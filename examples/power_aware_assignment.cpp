// Power-aware assignment: the paper's motivating application (§5).
//
// Given a batch of profiled processes, the model prices every
// process-to-core mapping from profiles alone — no trial runs. Here
// the ModelEngine facade does the sweep: all k^cores placements become
// CoScheduleQuery candidates and one predict_batch call prices them in
// parallel, memoizing each process's fill curve across the batch. We
// then run the best and worst mappings on the simulator to show the
// predicted gap is real.
//
// Build & run:  ./build/examples/power_aware_assignment
#include <cstdio>
#include <memory>

#include "repro/core/power_model.hpp"
#include "repro/core/profiler.hpp"
#include "repro/engine/model_engine.hpp"
#include "repro/sim/system.hpp"
#include "repro/workload/generator.hpp"

namespace {

repro::Watts run_assignment(const repro::sim::MachineConfig& machine,
                            const repro::power::OracleConfig& oracle,
                            const repro::core::Assignment& assignment,
                            const std::vector<repro::core::ProcessProfile>&
                                profiles) {
  using namespace repro;
  sim::SystemConfig cfg;
  cfg.machine = machine;
  sim::System system(cfg, oracle, 7);
  for (CoreId c = 0; c < machine.cores; ++c)
    for (std::size_t idx : assignment.per_core[c]) {
      const workload::WorkloadSpec& spec =
          workload::find_spec(profiles[idx].name);
      system.add_process(spec.name, c, spec.mix,
                         std::make_unique<workload::StackDistanceGenerator>(
                             spec, machine.l2.sets));
    }
  system.warm_up(0.05);
  return system.run(0.3).mean_measured_power();
}

void describe(const repro::core::Assignment& a,
              const std::vector<repro::core::ProcessProfile>& profiles) {
  for (std::size_t c = 0; c < a.per_core.size(); ++c) {
    std::printf("    core %zu:", c);
    if (a.per_core[c].empty()) std::printf(" (idle)");
    for (std::size_t idx : a.per_core[c])
      std::printf(" %s", profiles[idx].name.c_str());
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace repro;

  const sim::MachineConfig machine = sim::four_core_server();
  const power::OracleConfig oracle = power::oracle_for_four_core_server();

  // Profile the batch (once per process — O(k), not O(2^k)).
  std::printf("Profiling the job batch on \"%s\"...\n", machine.name.c_str());
  const core::StressmarkProfiler profiler(machine, oracle);
  std::vector<core::ProcessProfile> profiles;
  for (const char* name : {"mcf", "art", "gzip", "equake"})
    profiles.push_back(profiler.profile(workload::find_spec(name)));

  // Train the Eq. 9 power model (§4.1).
  std::printf("Training the power model...\n");
  core::PowerTrainerOptions train;
  train.run_per_workload = 0.3;
  train.run_per_microbench = 0.12;
  const core::PowerModel model = core::PowerModel::train(
      machine, oracle,
      {"gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp"},
      train);

  // Register the batch once; every candidate below reuses the memoized
  // fill curves.
  engine::ModelEngine eng(machine, model);
  std::vector<engine::ProcessHandle> handles;
  for (const core::ProcessProfile& p : profiles)
    handles.push_back(eng.register_process(p));

  // Enumerate every process-to-core placement as a query batch.
  std::vector<engine::CoScheduleQuery> candidates;
  {
    std::vector<std::uint32_t> placement(profiles.size(), 0);
    while (true) {
      engine::CoScheduleQuery q;
      q.assignment = core::Assignment::empty(machine.cores);
      for (std::size_t p = 0; p < profiles.size(); ++p)
        q.assignment.per_core[placement[p]].push_back(handles[p]);
      candidates.push_back(std::move(q));
      std::size_t p = 0;
      while (p < profiles.size() && ++placement[p] == machine.cores) {
        placement[p] = 0;
        ++p;
      }
      if (p == profiles.size()) break;
    }
  }
  const std::vector<engine::SystemPrediction> predictions =
      eng.predict_batch(candidates);

  std::size_t best = 0, worst = 0;
  for (std::size_t i = 1; i < predictions.size(); ++i) {
    if (predictions[i].total_power < predictions[best].total_power) best = i;
    if (predictions[i].total_power > predictions[worst].total_power) worst = i;
  }

  const engine::ModelEngine::CacheStats stats = eng.cache_stats();
  std::printf("\nPriced %zu mappings from profiles alone "
              "(fill-curve cache: %llu hits / %llu builds).\n",
              candidates.size(),
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses));
  std::printf("\n  Min-power mapping (predicted %.1f W, %.2f GIPS):\n",
              predictions[best].total_power,
              predictions[best].throughput_ips / 1e9);
  describe(candidates[best].assignment, profiles);
  std::printf("\n  Max-power mapping (predicted %.1f W, %.2f GIPS):\n",
              predictions[worst].total_power,
              predictions[worst].throughput_ips / 1e9);
  describe(candidates[worst].assignment, profiles);

  // Ground truth.
  const Watts best_meas =
      run_assignment(machine, oracle, candidates[best].assignment, profiles);
  const Watts worst_meas =
      run_assignment(machine, oracle, candidates[worst].assignment, profiles);
  std::printf("\nMeasured:  min-power mapping %.1f W,  max-power mapping "
              "%.1f W\n",
              best_meas, worst_meas);
  std::printf("Prediction errors: %.1f%% and %.1f%%\n",
              100.0 * (predictions[best].total_power - best_meas) / best_meas,
              100.0 * (predictions[worst].total_power - worst_meas) /
                  worst_meas);
  return 0;
}
