// What-if migration analysis with the Fig. 1 incremental estimator.
//
// A running system wants to place an incoming process: for each
// candidate core, the Fig. 1 algorithm combines the *current* per-core
// powers (from live HPC rates through the Eq. 9 model) with predicted
// powers for the combinations the newcomer would join (Eq. 11). This
// is the on-line decision loop the paper targets: no trial placement,
// no perturbation of running work.
//
// Build & run:  ./build/examples/whatif_scheduler
#include <cstdio>
#include <memory>

#include "repro/core/combined.hpp"
#include "repro/core/power_model.hpp"
#include "repro/core/profiler.hpp"
#include "repro/sim/system.hpp"
#include "repro/workload/generator.hpp"

int main() {
  using namespace repro;

  const sim::MachineConfig machine = sim::four_core_server();
  const power::OracleConfig oracle = power::oracle_for_four_core_server();

  std::printf("Profiling workloads...\n");
  const core::StressmarkProfiler profiler(machine, oracle);
  std::vector<core::ProcessProfile> profiles;
  for (const char* name : {"vpr", "twolf", "mcf"})
    profiles.push_back(profiler.profile(workload::find_spec(name)));
  const std::size_t vpr = 0, twolf = 1, mcf = 2;

  std::printf("Training power model...\n");
  core::PowerTrainerOptions train;
  train.run_per_workload = 0.3;
  train.run_per_microbench = 0.12;
  const core::PowerModel model = core::PowerModel::train(
      machine, oracle,
      {"gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp"},
      train);
  const core::CombinedEstimator estimator(model, machine);

  // Current state: vpr on core 0, twolf on core 2 (different dies).
  core::Assignment current = core::Assignment::empty(machine.cores);
  current.per_core[0].push_back(vpr);
  current.per_core[2].push_back(twolf);

  // Live system: read current per-core powers from HPC rates.
  sim::SystemConfig cfg;
  cfg.machine = machine;
  sim::System live(cfg, oracle, 11);
  for (CoreId c = 0; c < machine.cores; ++c)
    for (std::size_t idx : current.per_core[c]) {
      const workload::WorkloadSpec& spec =
          workload::find_spec(profiles[idx].name);
      live.add_process(spec.name, c, spec.mix,
                       std::make_unique<workload::StackDistanceGenerator>(
                           spec, machine.l2.sets));
    }
  live.warm_up(0.05);
  const sim::RunResult snapshot = live.run(0.15);

  std::vector<Watts> core_power(machine.cores, model.idle_core());
  const sim::Sample& last = snapshot.samples.back();
  for (CoreId c = 0; c < machine.cores; ++c)
    if (!current.per_core[c].empty())
      core_power[c] = model.idle_core() + model.dynamic_power(
                                              last.core_rates[c]);
  std::printf("\nCurrent state: vpr@core0, twolf@core2;  measured %.1f W\n",
              snapshot.mean_measured_power());

  // What if mcf lands on each core?
  std::printf("\nWhat-if: assign incoming mcf to...\n");
  Watts best_power = 0.0;
  CoreId best_core = 0;
  for (CoreId c = 0; c < machine.cores; ++c) {
    const Watts predicted = estimator.estimate_after_assign(
        profiles, current, mcf, c, core_power);
    std::printf("  core %u -> predicted %.1f W%s\n", c, predicted,
                current.per_core[c].empty() ? "" : "  (time-shared)");
    if (c == 0 || predicted < best_power) {
      best_power = predicted;
      best_core = c;
    }
  }
  std::printf("\nDecision: place mcf on core %u (predicted %.1f W).\n",
              best_core, best_power);

  // Verify the chosen placement.
  core::Assignment chosen = current;
  chosen.per_core[best_core].push_back(mcf);
  sim::System verify(cfg, oracle, 12);
  for (CoreId c = 0; c < machine.cores; ++c)
    for (std::size_t idx : chosen.per_core[c]) {
      const workload::WorkloadSpec& spec =
          workload::find_spec(profiles[idx].name);
      verify.add_process(spec.name, c, spec.mix,
                         std::make_unique<workload::StackDistanceGenerator>(
                             spec, machine.l2.sets));
    }
  verify.warm_up(0.05);
  const Watts measured = verify.run(0.3).mean_measured_power();
  std::printf("Measured after placement: %.1f W (prediction error %.1f%%)\n",
              measured, 100.0 * (best_power - measured) / measured);
  return 0;
}
