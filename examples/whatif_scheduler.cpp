// What-if migration analysis on the ModelEngine facade.
//
// A running system wants to place an incoming process: every candidate
// core yields one co-schedule query, and a single predict_batch call
// prices them all — per-process operating points, per-core power, and
// the package total — from profiles alone. The paper's incremental
// Fig. 1 estimator (reusing *measured* per-core powers for the
// combinations the newcomer does not touch) is run alongside for
// comparison: the two agree wherever the newcomer lands on an idle
// core, and the engine needs no live HPC snapshot at all.
//
// Build & run:  ./build/examples/whatif_scheduler
#include <cstdio>
#include <memory>

#include "repro/core/combined.hpp"
#include "repro/core/power_model.hpp"
#include "repro/core/profiler.hpp"
#include "repro/engine/model_engine.hpp"
#include "repro/sim/system.hpp"
#include "repro/workload/generator.hpp"

int main() {
  using namespace repro;

  const sim::MachineConfig machine = sim::four_core_server();
  const power::OracleConfig oracle = power::oracle_for_four_core_server();

  std::printf("Profiling workloads...\n");
  const core::StressmarkProfiler profiler(machine, oracle);
  std::vector<core::ProcessProfile> profiles;
  for (const char* name : {"vpr", "twolf", "mcf"})
    profiles.push_back(profiler.profile(workload::find_spec(name)));

  std::printf("Training power model...\n");
  core::PowerTrainerOptions train;
  train.run_per_workload = 0.3;
  train.run_per_microbench = 0.12;
  const core::PowerModel model = core::PowerModel::train(
      machine, oracle,
      {"gzip", "vpr", "mcf", "bzip2", "twolf", "art", "equake", "ammp"},
      train);

  // The engine owns the profiles; candidates only reference handles.
  engine::ModelEngine eng(machine, model);
  const engine::ProcessHandle vpr = eng.register_process(profiles[0]);
  const engine::ProcessHandle twolf = eng.register_process(profiles[1]);
  const engine::ProcessHandle mcf = eng.register_process(profiles[2]);

  // Current state: vpr on core 0, twolf on core 2 (different dies).
  core::Assignment current = core::Assignment::empty(machine.cores);
  current.per_core[0].push_back(vpr);
  current.per_core[2].push_back(twolf);

  // Live system snapshot, kept only to feed the Fig. 1 comparison.
  sim::SystemConfig cfg;
  cfg.machine = machine;
  sim::System live(cfg, oracle, 11);
  for (CoreId c = 0; c < machine.cores; ++c)
    for (std::size_t idx : current.per_core[c]) {
      const workload::WorkloadSpec& spec =
          workload::find_spec(profiles[idx].name);
      live.add_process(spec.name, c, spec.mix,
                       std::make_unique<workload::StackDistanceGenerator>(
                           spec, machine.l2.sets));
    }
  live.warm_up(0.05);
  const sim::RunResult snapshot = live.run(0.15);

  std::vector<Watts> core_power(machine.cores, model.idle_core());
  const sim::Sample& last = snapshot.samples.back();
  for (CoreId c = 0; c < machine.cores; ++c)
    if (!current.per_core[c].empty())
      core_power[c] = model.idle_core() + model.dynamic_power(
                                              last.core_rates[c]);
  std::printf("\nCurrent state: vpr@core0, twolf@core2;  measured %.1f W\n",
              snapshot.mean_measured_power());

  // One query per candidate core; one batch call prices them all.
  std::vector<engine::CoScheduleQuery> candidates;
  for (CoreId c = 0; c < machine.cores; ++c) {
    engine::CoScheduleQuery q;
    q.assignment = current;
    q.assignment.per_core[c].push_back(mcf);
    candidates.push_back(std::move(q));
  }
  const std::vector<engine::SystemPrediction> predictions =
      eng.predict_batch(candidates);

  const core::CombinedEstimator fig1(model, machine);
  std::printf("\nWhat-if: assign incoming mcf to...\n");
  CoreId best_core = 0;
  for (CoreId c = 0; c < machine.cores; ++c) {
    const Watts incremental = fig1.estimate_after_assign(
        profiles, current, mcf, c, core_power);
    std::printf("  core %u -> engine %.1f W, Fig. 1 incremental %.1f W%s\n",
                c, predictions[c].total_power, incremental,
                current.per_core[c].empty() ? "" : "  (time-shared)");
    if (predictions[c].total_power < predictions[best_core].total_power)
      best_core = c;
  }
  const Watts best_power = predictions[best_core].total_power;
  std::printf("\nDecision: place mcf on core %u (predicted %.1f W).\n",
              best_core, best_power);

  // Verify the chosen placement.
  sim::System verify(cfg, oracle, 12);
  for (CoreId c = 0; c < machine.cores; ++c)
    for (std::size_t idx : candidates[best_core].assignment.per_core[c]) {
      const workload::WorkloadSpec& spec =
          workload::find_spec(profiles[idx].name);
      verify.add_process(spec.name, c, spec.mix,
                         std::make_unique<workload::StackDistanceGenerator>(
                             spec, machine.l2.sets));
    }
  verify.warm_up(0.05);
  const Watts measured = verify.run(0.3).mean_measured_power();
  std::printf("Measured after placement: %.1f W (prediction error %.1f%%)\n",
              measured, 100.0 * (best_power - measured) / measured);
  return 0;
}
