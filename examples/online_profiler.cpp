// On-line profiling of a "new" application (§1, §3.4).
//
// The paper's deployment story: when a new application becomes a
// significant part of the workload, force it to run alone on an idle
// machine, co-run it with the stressmark at each occupancy, and save
// its feature vector for future assignment decisions. This example
// profiles a custom (non-suite) workload, prints the recovered
// reuse-distance histogram against the generative truth, and saves the
// profile to disk for later sessions.
//
// Build & run:  ./build/examples/online_profiler [store-path]
#include <cstdio>
#include <fstream>

#include "repro/core/analytic.hpp"
#include "repro/core/profiler.hpp"
#include "repro/core/serialize.hpp"
#include "repro/workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const std::string store_path =
      argc > 1 ? argv[1] : "online_profiler.store";

  // A "new application" not in the shipped suite: a streaming scan
  // with a hot index — say, a database table scan.
  workload::WorkloadSpec scan;
  scan.name = "tablescan";
  scan.reuse_weights = workload::geometric_weights(0.6, 6);  // hot index
  scan.new_line_weight = 0.30;                               // the scan
  scan.stream_weight = 0.10;
  scan.mix = sim::InstructionMix{.l2_api = 0.03,
                                 .l1_rpi = 0.34,
                                 .branch_pi = 0.12,
                                 .fp_pi = 0.02,
                                 .base_cpi = 1.1};

  const sim::MachineConfig machine = sim::two_core_workstation();
  const power::OracleConfig oracle = power::oracle_for_two_core_workstation();

  std::printf("Profiling new application \"%s\" (%u stressmark co-runs)...\n",
              scan.name.c_str(), machine.l2.ways);
  const core::StressmarkProfiler profiler(machine, oracle);
  const core::ProcessProfile profile = profiler.profile(scan);

  // Compare the recovered MPA curve with the generative truth.
  const core::FeatureVector truth = core::analytic_features(scan, machine);
  std::printf("\n%-4s %-14s %-14s\n", "S", "MPA profiled", "MPA true");
  for (std::uint32_t s = 1; s <= machine.l2.ways; ++s)
    std::printf("%-4u %-14.4f %-14.4f\n", s,
                profile.features.histogram.mpa(s), truth.histogram.mpa(s));

  std::printf("\nSPI law: profiled SPI = %.3g·MPA + %.3g   "
              "(true %.3g·MPA + %.3g)\n",
              profile.features.alpha, profile.features.beta, truth.alpha,
              truth.beta);
  std::printf("P(alone) = %.2f W,  API = %.4f\n", profile.power_alone,
              profile.features.api);

  // Persist for future assignment decisions.
  core::ModelStore store;
  store.profiles.push_back(profile);
  core::save_store(store_path, store);
  std::printf("\nSaved feature vector to %s — future sessions can load it "
              "instead of re-profiling.\n", store_path.c_str());

  const auto reloaded = core::load_store(store_path);
  std::printf("Reload check: %s\n",
              reloaded && reloaded->find("tablescan") ? "OK" : "FAILED");
  return 0;
}
