// On-line profiling, streamed end to end (§1, §3.4 + the streaming
// pipeline layer), sharded per die (ISSUE 7).
//
// The original deployment story forced a new application onto an idle
// machine and swept the stressmark against it. This example shows the
// *streaming* alternative on the 4-core/2-die server: four
// never-before-seen processes run under normal multi-programmed
// contention while their HPC windows flow through the sharded
// pipeline — each machine window is split into per-die slices, one
// producer lane per die, each lane's sanitize/phase-detect/build work
// owned by its own PipelineShard, and the coordinator merges the
// shard streams back into one deterministic event log while keeping
// the single serialized door into ModelEngine::try_apply. Confirmed
// phase changes and periodic refits emit versioned profile revisions;
// each revision invalidates exactly that process's memoized artifacts
// and re-prices the running co-schedule with a warm-started Newton
// solve seeded from the previous equilibrium. The example prints the
// revision/phase trace with per-phase SPI and power predictions, then
// checks the final prediction against the simulator's measurement and
// saves the latest revisions to a store.
//
// Build & run:  ./build/examples/online_profiler [store-path]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "repro/core/power_model.hpp"
#include "repro/core/serialize.hpp"
#include "repro/engine/model_engine.hpp"
#include "repro/online/sharded_pipeline.hpp"
#include "repro/sim/system.hpp"
#include "repro/workload/phased.hpp"
#include "repro/workload/spec.hpp"
#include "repro/workload/stressmark.hpp"

int main(int argc, char** argv) {
  using namespace repro;
  const std::string store_path =
      argc > 1 ? argv[1] : "online_profiler.store";

  const sim::MachineConfig machine = sim::four_core_server();
  const power::OracleConfig oracle = power::oracle_for_four_core_server();

  // Train the Eq. 9 power model once (short runs; §4.1).
  std::printf("Training the power model...\n");
  core::PowerTrainerOptions train;
  train.run_per_workload = 0.15;
  train.run_per_microbench = 0.06;
  const core::PowerModel power_model = core::PowerModel::train(
      machine, oracle, {"gzip", "mcf", "art", "equake"}, train);

  // The engine re-solves with Newton so warm starts pay off.
  engine::EngineOptions eng_options;
  eng_options.method = core::SolveOptions::Method::kNewton;
  eng_options.threads = 1;
  engine::ModelEngine eng(machine, power_model, eng_options);

  // Die 0 carries the phased pair sharing its L2: "appserver" flips
  // from a cache-friendly to a thrashing phase; "batchjob" steps
  // through three footprints, pushing appserver through different
  // occupancy points (the on-line stand-in for the stressmark sweep).
  // Die 1 carries a steady pair so the second shard has a live lane.
  const std::uint32_t sets = machine.l2.sets;
  sim::SystemConfig cfg;
  cfg.machine = machine;
  sim::System system(cfg, oracle, /*seed=*/0x5eedULL);

  const workload::WorkloadSpec friendly = workload::find_spec("gzip");
  const workload::WorkloadSpec thrashy = workload::find_spec("art");
  std::vector<workload::PhaseSegment> app_phases;
  app_phases.push_back({friendly, 6'000'000});
  app_phases.push_back({thrashy, 6'000'000});
  const ProcessId app = system.add_process(
      "appserver", 0, friendly.mix,
      std::make_unique<workload::PhasedGenerator>(app_phases, sets));

  std::vector<workload::PhaseSegment> batch_phases;
  batch_phases.push_back({workload::make_stressmark_spec(2), 5'000'000});
  batch_phases.push_back({workload::make_stressmark_spec(6), 5'000'000});
  batch_phases.push_back({workload::make_stressmark_spec(4), 5'000'000});
  const ProcessId batch = system.add_process(
      "batchjob", 1, batch_phases.front().spec.mix,
      std::make_unique<workload::PhasedGenerator>(batch_phases, sets));

  const workload::WorkloadSpec db_spec = workload::find_spec("mcf");
  const ProcessId db = system.add_process(
      "dbscan", 2, db_spec.mix,
      std::make_unique<workload::PhasedGenerator>(
          std::vector<workload::PhaseSegment>{{db_spec, 50'000'000}}, sets));
  const workload::WorkloadSpec cache_spec = workload::find_spec("equake");
  const ProcessId webcache = system.add_process(
      "webcache", 3, cache_spec.mix,
      std::make_unique<workload::PhasedGenerator>(
          std::vector<workload::PhaseSegment>{{cache_spec, 50'000'000}},
          sets));

  // The sharded streaming pipeline: one shard per die, cold-start
  // monitoring (no prior profiles). Each process registers on its
  // die's producer lane.
  online::ShardedPipelineOptions pipe_options;
  pipe_options.builder.phase.min_phase_windows = 5;
  pipe_options.builder.refit_interval = 8;
  pipe_options.builder.min_fit_windows = 4;
  pipe_options.shards = machine.dies;
  pipe_options.producers = machine.dies;
  pipe_options.coalesce_resolves = true;  // one re-solve per merged window
  online::ShardedPipeline pipe(eng, pipe_options);
  pipe.monitor(app, machine.core_to_die[0], "appserver");
  pipe.monitor(batch, machine.core_to_die[1], "batchjob");
  pipe.monitor(db, machine.core_to_die[2], "dbscan");
  pipe.monitor(webcache, machine.core_to_die[3], "webcache");

  std::printf("Streaming %u ms HPC windows through %zu pipeline shards...\n\n",
              static_cast<unsigned>(cfg.sample_period * 1000.0),
              pipe.shard_count());
  std::printf("%-8s %-10s %-4s %-7s %-11s %-9s %-7s\n", "t [s]", "process",
              "rev", "phases", "SPI(app)", "P [W]", "iters");

  // Once all four processes have registered themselves (first
  // revisions), re-price the running co-schedule after every further
  // revision. Each machine window is split into per-die slices and
  // pushed lane by lane; the coordinator reunites them on (seq, die).
  bool query_set = false;
  online::EventCursor next_seq = 0;  // events_since cursor, eviction-proof
  const ProcessId all_pids[] = {app, batch, db, webcache};
  const sim::RunResult run = system.run(1.5, [&](const sim::Sample& s) {
    for (const sim::Sample& slice : system.split_sample(s))
      pipe.push(slice);
    if (!query_set) {
      bool all = true;
      for (ProcessId pid : all_pids)
        if (!pipe.handle_of(pid)) all = false;
      if (all) {
        engine::CoScheduleQuery q;
        q.assignment = core::Assignment::empty(machine.cores);
        q.assignment.per_core[0].push_back(*pipe.handle_of(app));
        q.assignment.per_core[1].push_back(*pipe.handle_of(batch));
        q.assignment.per_core[2].push_back(*pipe.handle_of(db));
        q.assignment.per_core[3].push_back(*pipe.handle_of(webcache));
        pipe.set_query(q);
        query_set = true;
      }
    }
    for (const online::PipelineEvent& event : pipe.events_since(next_seq)) {
      next_seq = event.seq + 1;
      if (!event.is_profile()) continue;
      const online::RevisionEvent& e = event.profile();
      const core::ProcessProfile p = eng.profile(e.handle);
      double app_spi = 0.0;
      double watts = 0.0;
      if (e.resolved) {
        for (const auto& pt : e.prediction.processes)
          if (pt.handle == *pipe.handle_of(app))
            app_spi = pt.prediction.spi;
        watts = e.prediction.total_power;
      }
      std::printf("%-8.3f %-10s %-4llu %-7llu %-11.3e %-9.2f %-7d\n", e.time,
                  p.name.c_str(),
                  static_cast<unsigned long long>(e.revision),
                  static_cast<unsigned long long>(
                      pipe.snapshot().stats.phase_changes),
                  app_spi, watts, e.solver_iterations);
    }
  });
  pipe.finish();

  const online::PipelineSnapshot snap = pipe.snapshot();
  const online::PipelineStats& stats = snap.stats;
  std::printf("\n%llu windows -> %llu revisions, %llu phase changes, "
              "%llu warm re-solves (%.1f Newton iterations each), "
              "%llu re-solves coalesced\n",
              static_cast<unsigned long long>(stats.windows),
              static_cast<unsigned long long>(stats.revisions),
              static_cast<unsigned long long>(stats.phase_changes),
              static_cast<unsigned long long>(stats.resolves),
              stats.resolves > 0
                  ? static_cast<double>(stats.solver_iterations) /
                        static_cast<double>(stats.resolves)
                  : 0.0,
              static_cast<unsigned long long>(stats.coalesced_resolves));

  // Check the last prediction against what the simulator measured over
  // the tail windows (the final phase pair).
  const std::optional<engine::SystemPrediction>& latest = snap.latest;
  if (latest.has_value()) {
    double measured_spi = 0.0;
    std::size_t tail = 0;
    for (std::size_t i = run.samples.size() >= 10 ? run.samples.size() - 10
                                                  : 0;
         i < run.samples.size(); ++i) {
      const sim::Sample& s = run.samples[i];
      if (s.process_delta[app].instructions > 0.0) {
        measured_spi += s.process_cpu[app] / s.process_delta[app].instructions;
        ++tail;
      }
    }
    measured_spi /= static_cast<double>(tail);
    double predicted_spi = 0.0;
    for (const auto& pt : latest->processes)
      if (pt.handle == *pipe.handle_of(app)) predicted_spi = pt.prediction.spi;
    std::printf("appserver final phase: predicted SPI %.3e, measured %.3e "
                "(%.1f%% error)\n",
                predicted_spi, measured_spi,
                100.0 * std::abs(predicted_spi - measured_spi) / measured_spi);
  }

  // Persist the freshest revisions for later sessions.
  core::ModelStore store;
  for (ProcessId pid : all_pids)
    if (auto h = pipe.handle_of(pid)) store.profiles.push_back(eng.profile(*h));
  core::save_store(store_path, store);
  std::printf("Saved %zu streamed profile revisions to %s\n",
              store.profiles.size(), store_path.c_str());

  const auto reloaded = core::load_store(store_path);
  std::printf("Reload check: %s\n",
              reloaded && reloaded->find("appserver") ? "OK" : "FAILED");
  return 0;
}
