#include "repro/power/oracle.hpp"

#include <cmath>

namespace repro::power {

Watts ComponentResponse::respond(double rate) const {
  if (watts_per_event_rate == 0.0 || rate <= 0.0) return 0.0;
  const double effective =
      saturation_rate * (1.0 - std::exp(-rate / saturation_rate));
  return watts_per_event_rate * effective;
}

Watts PowerOracle::true_power(
    std::span<const hpc::EventRates> per_core_rates) const {
  Watts p = config_.idle_watts;
  for (const hpc::EventRates& r : per_core_rates) {
    p += config_.l1.respond(r.l1rps);
    p += config_.l2.respond(r.l2rps);
    p += config_.l2miss.respond(r.l2mps);
    p += config_.branch.respond(r.brps);
    p += config_.fp.respond(r.fpps);
    if (config_.watts_per_ips != 0.0 && r.ips > 0.0) {
      const double eff =
          config_.ips_saturation *
          (1.0 - std::exp(-r.ips / config_.ips_saturation));
      p += config_.watts_per_ips * eff;
    }
  }
  return p;
}

Watts CurrentClamp::measure(Watts true_watts, Seconds dt) {
  REPRO_ENSURE(dt > 0.0, "measurement window must be positive");
  REPRO_ENSURE(true_watts >= 0.0, "negative true power");

  // Slow multiplicative drift (exact OU discretization per window).
  if (config_.wander_sigma > 0.0) {
    if (!wander_initialized_) {
      wander_ = rng_.normal(0.0, config_.wander_sigma);
      wander_initialized_ = true;
    } else {
      const double decay = std::exp(-dt / config_.wander_tau);
      wander_ = decay * wander_ +
                rng_.normal(0.0, config_.wander_sigma *
                                     std::sqrt(1.0 - decay * decay));
    }
  }
  const Watts drifting = true_watts * (1.0 + wander_);

  const double n_d = std::round(config_.daq_hz * dt);
  // The DAQ averages n independent current samples; simulate the mean
  // directly (same distribution, O(1) instead of O(n)).
  const Amperes true_current =
      drifting / (config_.volts * config_.regulator_efficiency);
  const Amperes mean_noise = rng_.normal(
      0.0, config_.current_noise_amps / std::sqrt(std::max(1.0, n_d)));
  const Amperes measured = true_current + mean_noise;
  return config_.regulator_efficiency * config_.volts * measured;
}

namespace {

/// Scale a full-size (server-class) component set by `k` for smaller
/// machines, keeping the response shape.
OracleConfig scaled(Watts idle, double k) {
  OracleConfig c;
  c.idle_watts = idle;
  c.l1 = {4.5e-9 * k, 2.5e9};
  c.l2 = {2.2e-8 * k, 1.2e8};
  // Negative (the paper's c3 < 0): a miss-stalled core draws less than
  // its event rates would otherwise imply — but never below idle, so
  // the weight is bounded by the memory-bound workloads' positive
  // activity terms.
  c.l2miss = {-8.0e-8 * k, 6.0e7};
  c.branch = {4.5e-9 * k, 1.5e9};
  c.fp = {5.5e-9 * k, 2.0e9};
  c.watts_per_ips = 1.5e-9 * k;
  c.ips_saturation = 8.0e9;
  return c;
}

}  // namespace

OracleConfig oracle_for_four_core_server() { return scaled(45.0, 1.0); }

OracleConfig oracle_for_two_core_workstation() { return scaled(26.0, 0.65); }

OracleConfig oracle_for_core2_duo_laptop() { return scaled(14.0, 0.4); }

}  // namespace repro::power
