#include "repro/math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::math {

Summary summarize(std::span<const double> xs) {
  REPRO_ENSURE(!xs.empty(), "summarize needs data");
  Summary s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

double mean_abs_error(std::span<const double> est,
                      std::span<const double> ref) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i)
    sum += std::fabs(est[i] - ref[i]);
  return sum / static_cast<double>(est.size());
}

double mean_abs_pct_error(std::span<const double> est,
                          std::span<const double> ref) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    REPRO_ENSURE(ref[i] != 0.0, "relative error undefined at ref == 0");
    sum += std::fabs(est[i] - ref[i]) / std::fabs(ref[i]);
  }
  return 100.0 * sum / static_cast<double>(est.size());
}

double max_abs_pct_error(std::span<const double> est,
                         std::span<const double> ref) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    REPRO_ENSURE(ref[i] != 0.0, "relative error undefined at ref == 0");
    worst = std::max(worst, std::fabs(est[i] - ref[i]) / std::fabs(ref[i]));
  }
  return 100.0 * worst;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  REPRO_ENSURE(xs.size() == ys.size() && xs.size() > 1, "series mismatch");
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  REPRO_ENSURE(sx.stddev > 0.0 && sy.stddev > 0.0,
               "correlation undefined for constant series");
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev * sy.stddev);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  REPRO_ENSURE(xs.size() == ys.size() && xs.size() >= 2, "need >= 2 points");
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - sx.mean) * (xs[i] - sx.mean);
    sxy += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  REPRO_ENSURE(sxx > 0.0, "fit_line needs varying x");
  LineFit f;
  f.slope = sxy / sxx;
  f.intercept = sy.mean - f.slope * sx.mean;
  std::vector<double> pred(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    pred[i] = f.slope * xs[i] + f.intercept;
  f.r2 = r_squared(pred, ys);
  return f;
}

double accuracy_pct(std::span<const double> est, std::span<const double> ref) {
  return std::max(0.0, 100.0 - mean_abs_pct_error(est, ref));
}

double r_squared(std::span<const double> pred, std::span<const double> ref) {
  REPRO_ENSURE(pred.size() == ref.size() && !pred.empty(), "series mismatch");
  const Summary s = summarize(ref);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  double ss_ref = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ss_res += (ref[i] - pred[i]) * (ref[i] - pred[i]);
    ss_tot += (ref[i] - s.mean) * (ref[i] - s.mean);
    ss_ref += ref[i] * ref[i];
  }
  if (ss_tot > 0.0) return 1.0 - ss_res / ss_tot;
  // Constant observations: R² is undefined. 1.0 by convention only when
  // the residuals are numerically zero relative to the observations'
  // scale; anything larger used to (wrongly) report a perfect fit.
  return ss_res <= 1e-18 * std::max(1.0, ss_ref) ? 1.0 : 0.0;
}

double relative_error_floored(double est, double ref, double floor) {
  REPRO_ENSURE(floor > 0.0, "relative-error floor must be positive");
  return std::fabs(est - ref) / std::max(std::fabs(ref), floor);
}

double mean_abs_pct_error_floored(std::span<const double> est,
                                  std::span<const double> ref, double floor) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i)
    sum += relative_error_floored(est[i], ref[i], floor);
  return 100.0 * sum / static_cast<double>(est.size());
}

double accuracy_pct_floored(std::span<const double> est,
                            std::span<const double> ref, double floor) {
  return std::max(0.0, 100.0 - mean_abs_pct_error_floored(est, ref, floor));
}

}  // namespace repro::math
