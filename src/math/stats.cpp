#include "repro/math/stats.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::math {

Summary summarize(std::span<const double> xs) {
  REPRO_ENSURE(!xs.empty(), "summarize needs data");
  Summary s;
  s.count = xs.size();
  s.min = xs[0];
  s.max = xs[0];
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  return s;
}

double mean_abs_error(std::span<const double> est,
                      std::span<const double> ref) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i)
    sum += std::fabs(est[i] - ref[i]);
  return sum / static_cast<double>(est.size());
}

double mean_abs_pct_error(std::span<const double> est,
                          std::span<const double> ref) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    REPRO_ENSURE(ref[i] != 0.0, "relative error undefined at ref == 0");
    sum += std::fabs(est[i] - ref[i]) / std::fabs(ref[i]);
  }
  return 100.0 * sum / static_cast<double>(est.size());
}

double max_abs_pct_error(std::span<const double> est,
                         std::span<const double> ref) {
  REPRO_ENSURE(est.size() == ref.size() && !est.empty(), "series mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < est.size(); ++i) {
    REPRO_ENSURE(ref[i] != 0.0, "relative error undefined at ref == 0");
    worst = std::max(worst, std::fabs(est[i] - ref[i]) / std::fabs(ref[i]));
  }
  return 100.0 * worst;
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  REPRO_ENSURE(xs.size() == ys.size() && xs.size() > 1, "series mismatch");
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  REPRO_ENSURE(sx.stddev > 0.0 && sy.stddev > 0.0,
               "correlation undefined for constant series");
  double cov = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    cov += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  cov /= static_cast<double>(xs.size() - 1);
  return cov / (sx.stddev * sy.stddev);
}

LineFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  REPRO_ENSURE(xs.size() == ys.size() && xs.size() >= 2, "need >= 2 points");
  const Summary sx = summarize(xs);
  const Summary sy = summarize(ys);
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxx += (xs[i] - sx.mean) * (xs[i] - sx.mean);
    sxy += (xs[i] - sx.mean) * (ys[i] - sy.mean);
  }
  REPRO_ENSURE(sxx > 0.0, "fit_line needs varying x");
  LineFit f;
  f.slope = sxy / sxx;
  f.intercept = sy.mean - f.slope * sx.mean;
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = f.slope * xs[i] + f.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - sy.mean) * (ys[i] - sy.mean);
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

double accuracy_pct(std::span<const double> est, std::span<const double> ref) {
  return std::max(0.0, 100.0 - mean_abs_pct_error(est, ref));
}

}  // namespace repro::math
