#include "repro/math/roots.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"
#include "repro/math/matrix.hpp"

namespace repro::math {

double solve_bracketed(const std::function<double(double)>& f, double lo,
                       double hi, double x_tol, int max_iter) {
  REPRO_ENSURE(lo <= hi, "invalid bracket");
  double f_lo = f(lo);
  double f_hi = f(hi);
  if (f_lo == 0.0) return lo;
  if (f_hi == 0.0) return hi;
  REPRO_ENSURE(std::signbit(f_lo) != std::signbit(f_hi),
               "solve_bracketed requires a sign change");

  double mid = 0.5 * (lo + hi);
  for (int it = 0; it < max_iter && (hi - lo) > x_tol; ++it) {
    // Secant proposal, accepted only if it lands strictly inside.
    double prop = mid;
    const double denom = f_hi - f_lo;
    if (denom != 0.0) {
      prop = lo - f_lo * (hi - lo) / denom;
      const double margin = 0.01 * (hi - lo);
      if (!(prop > lo + margin && prop < hi - margin))
        prop = 0.5 * (lo + hi);
    } else {
      prop = 0.5 * (lo + hi);
    }
    const double f_prop = f(prop);
    if (f_prop == 0.0) return prop;
    if (std::signbit(f_prop) == std::signbit(f_lo)) {
      lo = prop;
      f_lo = f_prop;
    } else {
      hi = prop;
      f_hi = f_prop;
    }
    mid = 0.5 * (lo + hi);
  }
  return mid;
}

namespace {

double inf_norm(const std::vector<double>& v) {
  double m = 0.0;
  for (double e : v) m = std::max(m, std::fabs(e));
  return m;
}

}  // namespace

NewtonResult newton_raphson(
    const std::function<std::vector<double>(const std::vector<double>&)>& f,
    std::vector<double> x0,
    const std::function<void(std::vector<double>&)>& project,
    const NewtonOptions& options) {
  const std::size_t n = x0.size();
  REPRO_ENSURE(n > 0, "newton_raphson needs unknowns");
  if (project) project(x0);

  NewtonResult result;
  result.x = std::move(x0);
  std::vector<double> fx = f(result.x);
  REPRO_ENSURE(fx.size() == n, "F must map R^n to R^n");

  for (int it = 0; it < options.max_iter; ++it) {
    result.iterations = it;
    result.residual_norm = inf_norm(fx);
    if (result.residual_norm < options.f_tol) {
      result.converged = true;
      return result;
    }

    // Forward-difference Jacobian, column by column.
    Matrix jac(n, n);
    for (std::size_t c = 0; c < n; ++c) {
      const double h =
          options.jacobian_eps * std::max(1.0, std::fabs(result.x[c]));
      std::vector<double> xp = result.x;
      xp[c] += h;
      if (project) project(xp);
      const double h_actual = xp[c] - result.x[c];
      if (h_actual == 0.0) continue;
      const std::vector<double> fp = f(xp);
      for (std::size_t r = 0; r < n; ++r)
        jac(r, c) = (fp[r] - fx[r]) / h_actual;
    }

    std::vector<double> rhs(n);
    for (std::size_t i = 0; i < n; ++i) rhs[i] = -fx[i];
    std::vector<double> step;
    try {
      step = solve_lu(jac, rhs);
    } catch (const Error&) {
      break;  // singular Jacobian: give up, report non-convergence
    }

    // Backtracking line search on ‖F‖∞.
    double lambda = 1.0;
    bool accepted = false;
    for (int bt = 0; bt < 30; ++bt) {
      std::vector<double> x_new = result.x;
      for (std::size_t i = 0; i < n; ++i) x_new[i] += lambda * step[i];
      if (project) project(x_new);
      const std::vector<double> f_new = f(x_new);
      if (inf_norm(f_new) < result.residual_norm) {
        result.x = std::move(x_new);
        fx = f_new;
        accepted = true;
        break;
      }
      lambda *= 0.5;
    }
    if (!accepted || inf_norm(step) * lambda < options.step_tol) break;
  }

  result.residual_norm = inf_norm(fx);
  result.converged = result.residual_norm < options.f_tol;
  return result;
}

}  // namespace repro::math
