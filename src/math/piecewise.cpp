#include "repro/math/piecewise.hpp"

#include <algorithm>

#include "repro/common/ensure.hpp"

namespace repro::math {

PiecewiseLinear::PiecewiseLinear(std::vector<double> xs,
                                 std::vector<double> ys)
    : xs_(std::move(xs)), ys_(std::move(ys)) {
  REPRO_ENSURE(!xs_.empty() && xs_.size() == ys_.size(),
               "knot arrays must be nonempty and equal length");
  for (std::size_t i = 1; i < xs_.size(); ++i)
    REPRO_ENSURE(xs_[i] > xs_[i - 1], "x knots must be strictly increasing");
}

double PiecewiseLinear::operator()(double x) const {
  REPRO_ENSURE(!xs_.empty(), "empty interpolant");
  if (x <= xs_.front()) return ys_.front();
  if (x >= xs_.back()) return ys_.back();
  const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs_.begin());
  const std::size_t lo = hi - 1;
  const double t = (x - xs_[lo]) / (xs_[hi] - xs_[lo]);
  return ys_[lo] + t * (ys_[hi] - ys_[lo]);
}

double PiecewiseLinear::derivative(double x) const {
  REPRO_ENSURE(!xs_.empty(), "empty interpolant");
  if (x < xs_.front() || x > xs_.back() || xs_.size() == 1) return 0.0;
  auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
  if (it == xs_.end()) --it;  // x == back(): use the last segment
  const std::size_t hi =
      std::max<std::size_t>(1, static_cast<std::size_t>(it - xs_.begin()));
  const std::size_t lo = hi - 1;
  return (ys_[hi] - ys_[lo]) / (xs_[hi] - xs_[lo]);
}

double PiecewiseLinear::inverse(double y) const {
  REPRO_ENSURE(!ys_.empty(), "empty interpolant");
  const bool increasing = ys_.back() >= ys_.front();
  // Verify monotonicity in the requested direction (weak).
  for (std::size_t i = 1; i < ys_.size(); ++i)
    REPRO_ENSURE(increasing ? ys_[i] >= ys_[i - 1] : ys_[i] <= ys_[i - 1],
                 "inverse requires monotone y knots");

  const double y_lo = increasing ? ys_.front() : ys_.back();
  const double y_hi = increasing ? ys_.back() : ys_.front();
  if (y <= y_lo) return increasing ? xs_.front() : xs_.back();
  if (y >= y_hi) return increasing ? xs_.back() : xs_.front();

  // Find the containing segment by scanning (knot counts here are tiny:
  // at most the cache associativity).
  for (std::size_t i = 1; i < ys_.size(); ++i) {
    const double a = ys_[i - 1];
    const double b = ys_[i];
    const bool inside = increasing ? (y >= a && y <= b) : (y <= a && y >= b);
    if (!inside) continue;
    if (a == b) return xs_[i - 1];  // flat segment: leftmost preimage
    const double t = (y - a) / (b - a);
    return xs_[i - 1] + t * (xs_[i] - xs_[i - 1]);
  }
  return xs_.back();  // unreachable given the clamps above
}

}  // namespace repro::math
