#include "repro/math/mvlr.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "repro/math/stats.hpp"

namespace repro::math {

Mvlr::Fit Mvlr::fit(const Matrix& x, std::span<const double> y) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  REPRO_ENSURE(y.size() == m, "observation count mismatch");
  REPRO_ENSURE(m >= n + 1, "need more observations than regressors");

  // Augment with an all-ones column for the intercept.
  Matrix design(m, n + 1);
  for (std::size_t r = 0; r < m; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 0; c < n; ++c) design(r, c + 1) = x(r, c);
  }
  LeastSquaresDiag diag;
  const Vector beta =
      solve_least_squares(design, Vector(y.begin(), y.end()), &diag);
  REPRO_ENSURE(!diag.rank_deficient,
               diag.column == 0
                   ? std::string("rank-deficient design: the injected "
                                 "intercept column is linearly dependent")
                   : "rank-deficient design: regressor column " +
                         std::to_string(diag.column - 1) +
                         " is linearly dependent (constant or collinear)");

  Fit f;
  f.intercept = beta[0];
  f.coefficients.assign(beta.begin() + 1, beta.end());

  const Vector pred = predict(f, x);
  const Summary sy = summarize(y);
  // Relative-error accuracy with an epsilon-floored denominator scaled
  // to the observations, so a window whose measured values pass through
  // zero degrades the score instead of dividing by zero.
  const double yscale = std::max(std::fabs(sy.min), std::fabs(sy.max));
  f.accuracy =
      accuracy_pct_floored(pred, y, yscale > 0.0 ? 1e-9 * yscale : 1e-9);
  f.r2 = r_squared(pred, y);
  return f;
}

double Mvlr::predict(const Fit& f, std::span<const double> regressors) {
  REPRO_ENSURE(regressors.size() == f.coefficients.size(),
               "regressor count mismatch");
  return f.intercept + dot(f.coefficients, regressors);
}

Vector Mvlr::predict(const Fit& f, const Matrix& x) {
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r)
    out[r] = predict(f, x.row(r));
  return out;
}

}  // namespace repro::math
