#include "repro/math/mvlr.hpp"

#include "repro/math/stats.hpp"

namespace repro::math {

Mvlr::Fit Mvlr::fit(const Matrix& x, std::span<const double> y) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  REPRO_ENSURE(y.size() == m, "observation count mismatch");
  REPRO_ENSURE(m >= n + 1, "need more observations than regressors");

  // Augment with an all-ones column for the intercept.
  Matrix design(m, n + 1);
  for (std::size_t r = 0; r < m; ++r) {
    design(r, 0) = 1.0;
    for (std::size_t c = 0; c < n; ++c) design(r, c + 1) = x(r, c);
  }
  const Vector beta = solve_least_squares(design, Vector(y.begin(), y.end()));

  Fit f;
  f.intercept = beta[0];
  f.coefficients.assign(beta.begin() + 1, beta.end());

  const Vector pred = predict(f, x);
  f.accuracy = accuracy_pct(pred, y);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  const Summary sy = summarize(y);
  for (std::size_t i = 0; i < m; ++i) {
    ss_res += (y[i] - pred[i]) * (y[i] - pred[i]);
    ss_tot += (y[i] - sy.mean) * (y[i] - sy.mean);
  }
  f.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

double Mvlr::predict(const Fit& f, std::span<const double> regressors) {
  REPRO_ENSURE(regressors.size() == f.coefficients.size(),
               "regressor count mismatch");
  return f.intercept + dot(f.coefficients, regressors);
}

Vector Mvlr::predict(const Fit& f, const Matrix& x) {
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r)
    out[r] = predict(f, x.row(r));
  return out;
}

}  // namespace repro::math
