#include "repro/math/neural_net.hpp"

#include <cmath>

#include "repro/math/stats.hpp"

namespace repro::math {

namespace {

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

NeuralNet NeuralNet::train(const Matrix& x, std::span<const double> y,
                           const Options& options) {
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  REPRO_ENSURE(y.size() == m && m >= 2, "bad training set");
  REPRO_ENSURE(options.hidden_units > 0 && options.epochs > 0,
               "bad NN options");

  NeuralNet net;
  net.inputs_ = n;
  net.hidden_ = options.hidden_units;

  // Standardize inputs and targets (constant columns get scale 1).
  net.in_mean_.assign(n, 0.0);
  net.in_scale_.assign(n, 1.0);
  for (std::size_t c = 0; c < n; ++c) {
    std::vector<double> col(m);
    for (std::size_t r = 0; r < m; ++r) col[r] = x(r, c);
    const Summary s = summarize(col);
    net.in_mean_[c] = s.mean;
    net.in_scale_[c] = s.stddev > 1e-12 ? s.stddev : 1.0;
  }
  {
    const Summary s = summarize(y);
    net.out_mean_ = s.mean;
    net.out_scale_ = s.stddev > 1e-12 ? s.stddev : 1.0;
  }

  Matrix xs(m, n);
  std::vector<double> ys(m);
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < n; ++c)
      xs(r, c) = (x(r, c) - net.in_mean_[c]) / net.in_scale_[c];
    ys[r] = (y[r] - net.out_mean_) / net.out_scale_;
  }

  const std::size_t h = net.hidden_;
  Rng rng(options.seed);
  auto init = [&](std::size_t fan_in) {
    return rng.normal(0.0, 1.0 / std::sqrt(static_cast<double>(fan_in)));
  };
  net.w1_.resize(h * n);
  net.b1_.assign(h, 0.0);
  net.w2_.resize(h);
  for (auto& w : net.w1_) w = init(n);
  for (auto& w : net.w2_) w = init(h);
  net.b2_ = 0.0;

  std::vector<double> vw1(h * n, 0.0), vb1(h, 0.0), vw2(h, 0.0);
  double vb2 = 0.0;

  std::vector<std::size_t> order(m);
  for (std::size_t i = 0; i < m; ++i) order[i] = i;

  std::vector<double> hid(h), gw1(h * n), gb1(h), gw2(h);
  const std::size_t batch = std::max<std::size_t>(1, options.batch_size);

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher–Yates shuffle with the library RNG for determinism.
    for (std::size_t i = m; i-- > 1;) {
      const std::size_t j = rng.uniform_index(i + 1);
      std::swap(order[i], order[j]);
    }
    for (std::size_t start = 0; start < m; start += batch) {
      const std::size_t end = std::min(m, start + batch);
      std::fill(gw1.begin(), gw1.end(), 0.0);
      std::fill(gb1.begin(), gb1.end(), 0.0);
      std::fill(gw2.begin(), gw2.end(), 0.0);
      double gb2 = 0.0;

      for (std::size_t k = start; k < end; ++k) {
        const std::size_t r = order[k];
        // Forward.
        double out = net.b2_;
        for (std::size_t j = 0; j < h; ++j) {
          double z = net.b1_[j];
          for (std::size_t c = 0; c < n; ++c)
            z += net.w1_[j * n + c] * xs(r, c);
          hid[j] = sigmoid(z);
          out += net.w2_[j] * hid[j];
        }
        // Backward (squared error, linear output).
        const double delta = out - ys[r];
        gb2 += delta;
        for (std::size_t j = 0; j < h; ++j) {
          gw2[j] += delta * hid[j];
          const double dh = delta * net.w2_[j] * hid[j] * (1.0 - hid[j]);
          gb1[j] += dh;
          for (std::size_t c = 0; c < n; ++c)
            gw1[j * n + c] += dh * xs(r, c);
        }
      }

      const double scale =
          options.learning_rate / static_cast<double>(end - start);
      auto update = [&](double& w, double& v, double g) {
        v = options.momentum * v - scale * g;
        w += v;
      };
      for (std::size_t i = 0; i < h * n; ++i) update(net.w1_[i], vw1[i], gw1[i]);
      for (std::size_t j = 0; j < h; ++j) {
        update(net.b1_[j], vb1[j], gb1[j]);
        update(net.w2_[j], vw2[j], gw2[j]);
      }
      update(net.b2_, vb2, gb2);
    }
  }
  return net;
}

double NeuralNet::predict(std::span<const double> input) const {
  REPRO_ENSURE(input.size() == inputs_, "input width mismatch");
  double out = b2_;
  for (std::size_t j = 0; j < hidden_; ++j) {
    double z = b1_[j];
    for (std::size_t c = 0; c < inputs_; ++c)
      z += w1_[j * inputs_ + c] * (input[c] - in_mean_[c]) / in_scale_[c];
    out += w2_[j] * sigmoid(z);
  }
  return out * out_scale_ + out_mean_;
}

Vector NeuralNet::predict(const Matrix& x) const {
  Vector out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict(x.row(r));
  return out;
}

double NeuralNet::accuracy(const Matrix& x, std::span<const double> y) const {
  return accuracy_pct(predict(x), y);
}

}  // namespace repro::math
