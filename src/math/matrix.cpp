#include "repro/math/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace repro::math {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    REPRO_ENSURE(r.size() == cols_, "ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  REPRO_ENSURE(cols_ == rhs.rows_, "matmul shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < rhs.cols_; ++c)
        out(r, c) += v * rhs(k, c);
    }
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  REPRO_ENSURE(cols_ == v.size(), "matvec shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    out[r] = dot(row(r), v);
  return out;
}

Vector solve_spd(const Matrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  REPRO_ENSURE(a.cols() == n && b.size() == n, "solve_spd shape mismatch");
  // In-place lower Cholesky factor.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        REPRO_ENSURE(sum > 0.0, "matrix not positive definite");
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Forward then back substitution.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l(k, ii) * x[k];
    x[ii] = sum / l(ii, ii);
  }
  return x;
}

Vector solve_lu(const Matrix& a, const Vector& b) {
  const std::size_t n = a.rows();
  REPRO_ENSURE(a.cols() == n && b.size() == n, "solve_lu shape mismatch");
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(lu(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(lu(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    REPRO_ENSURE(best > 1e-300, "singular matrix in solve_lu");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu(pivot, c), lu(col, c));
      std::swap(perm[pivot], perm[col]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      lu(r, col) /= lu(col, col);
      const double f = lu(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = col + 1; c < n; ++c)
        lu(r, c) -= f * lu(col, c);
    }
  }

  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (std::size_t k = 0; k < i; ++k) sum -= lu(i, k) * x[k];
    x[i] = sum;
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= lu(ii, k) * x[k];
    x[ii] = sum / lu(ii, ii);
  }
  return x;
}

Vector solve_least_squares(const Matrix& a, const Vector& b) {
  LeastSquaresDiag diag;
  Vector x = solve_least_squares(a, b, &diag);
  REPRO_ENSURE(!diag.rank_deficient,
               "rank-deficient design matrix (column " +
                   std::to_string(diag.column) + " is linearly dependent)");
  return x;
}

Vector solve_least_squares(const Matrix& a, const Vector& b,
                           LeastSquaresDiag* diag) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  REPRO_ENSURE(m >= n && b.size() == m, "least squares needs rows >= cols");
  REPRO_ENSURE(diag != nullptr, "diagnostics out-param required");
  *diag = LeastSquaresDiag{};

  // Householder QR applied to [A | b] in place.
  Matrix r = a;
  Vector rhs = b;
  for (std::size_t col = 0; col < n; ++col) {
    // Build the Householder vector for column `col`, rows col..m-1.
    double norm = 0.0;
    for (std::size_t i = col; i < m; ++i) norm += r(i, col) * r(i, col);
    norm = std::sqrt(norm);
    if (r(col, col) > 0.0) norm = -norm;

    std::vector<double> v(m - col);
    v[0] = r(col, col) - norm;
    for (std::size_t i = col + 1; i < m; ++i) v[i - col] = r(i, col);
    double vtv = 0.0;
    for (double e : v) vtv += e * e;
    r(col, col) = norm;
    if (vtv <= 0.0) continue;

    auto reflect = [&](auto&& get, auto&& set) {
      double proj = 0.0;
      for (std::size_t i = col; i < m; ++i) proj += v[i - col] * get(i);
      const double f = 2.0 * proj / vtv;
      for (std::size_t i = col; i < m; ++i)
        set(i, get(i) - f * v[i - col]);
    };
    for (std::size_t c = col + 1; c < n; ++c)
      reflect([&](std::size_t i) { return r(i, c); },
              [&](std::size_t i, double x) { r(i, c) = x; });
    reflect([&](std::size_t i) { return rhs[i]; },
            [&](std::size_t i, double x) { rhs[i] = x; });
  }

  // Rank diagnostics from R's diagonal: a column whose pivot collapsed
  // relative to the largest pivot (or to zero outright) is numerically
  // a linear combination of the columns before it.
  diag->min_diag = std::fabs(r(0, 0));
  diag->max_diag = diag->min_diag;
  for (std::size_t c = 1; c < n; ++c) {
    const double d = std::fabs(r(c, c));
    diag->min_diag = std::min(diag->min_diag, d);
    diag->max_diag = std::max(diag->max_diag, d);
  }
  for (std::size_t c = 0; c < n; ++c) {
    if (std::fabs(r(c, c)) <= kRankTolerance * diag->max_diag) {
      diag->rank_deficient = true;
      diag->column = c;
      return {};
    }
  }

  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = rhs[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= r(ii, k) * x[k];
    x[ii] = sum / r(ii, ii);
  }
  return x;
}

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double e : v) s += e * e;
  return std::sqrt(s);
}

double dot(std::span<const double> a, std::span<const double> b) {
  REPRO_ENSURE(a.size() == b.size(), "dot shape mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace repro::math
