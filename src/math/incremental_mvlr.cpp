#include "repro/math/incremental_mvlr.hpp"

#include <algorithm>
#include <cmath>

#include "repro/math/stats.hpp"

namespace repro::math {

IncrementalMvlr::IncrementalMvlr(std::size_t regressors,
                                 IncrementalMvlrOptions options)
    : k_(regressors),
      options_(options),
      xtx_(regressors + 1, regressors + 1),
      xty_(regressors + 1, 0.0) {
  REPRO_ENSURE(k_ > 0, "need at least one regressor");
  REPRO_ENSURE(options_.condition_floor > 0.0,
               "condition floor must be positive");
}

void IncrementalMvlr::accumulate(const Row& row, double sign) {
  // Augmented observation vector [1, x…] folded into XᵀX and Xᵀy.
  const auto at = [&](std::size_t i) { return i == 0 ? 1.0 : row.x[i - 1]; };
  for (std::size_t i = 0; i <= k_; ++i) {
    const double vi = at(i);
    xty_[i] += sign * vi * row.y;
    for (std::size_t j = i; j <= k_; ++j) {
      const double acc = sign * vi * at(j);
      xtx_(i, j) += acc;
      if (j != i) xtx_(j, i) += acc;
    }
  }
}

void IncrementalMvlr::push(std::span<const double> regressors, double y) {
  REPRO_ENSURE(regressors.size() == k_, "regressor count mismatch");
  Row row{{regressors.begin(), regressors.end()}, y};
  accumulate(row, 1.0);
  rows_.push_back(std::move(row));
  if (options_.window > 0 && rows_.size() > options_.window) {
    accumulate(rows_.front(), -1.0);
    rows_.pop_front();
  }
}

std::optional<Mvlr::Fit> IncrementalMvlr::try_fit() const {
  if (!ready()) return std::nullopt;

  // Column equilibration: regressors can differ by many orders of
  // magnitude (an injected intercept of 1 against event rates of 1e9),
  // which would both wreck the Cholesky's accuracy (normal equations
  // square the condition number) and make any absolute pivot floor
  // meaningless. Scale each column by the root of its diagonal so the
  // scaled XᵀX has a unit diagonal; pivots then measure 1 − R² of a
  // column against its predecessors, a scale-free dependence signal.
  const std::size_t n = k_ + 1;
  Vector scale(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xtx_(i, i);
    if (!(d > 0.0)) return std::nullopt;  // all-zero column
    scale[i] = std::sqrt(d);
  }
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = xtx_(i, j) / (scale[i] * scale[j]);

  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (std::size_t p = 0; p < j; ++p) sum -= l(i, p) * l(j, p);
      if (i == j) {
        // Rank-deficient window (constant or collinear column).
        if (sum <= options_.condition_floor) return std::nullopt;
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  Vector fwd(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = xty_[i] / scale[i];
    for (std::size_t p = 0; p < i; ++p) sum -= l(i, p) * fwd[p];
    fwd[i] = sum / l(i, i);
  }
  Vector beta(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = fwd[ii];
    for (std::size_t p = ii + 1; p < n; ++p) sum -= l(p, ii) * beta[p];
    beta[ii] = sum / l(ii, ii);
  }
  for (std::size_t i = 0; i < n; ++i) beta[i] /= scale[i];

  Mvlr::Fit f;
  f.intercept = beta[0];
  f.coefficients.assign(beta.begin() + 1, beta.end());

  // Exact residual metrics over the retained rows, same conventions as
  // Mvlr::fit (constant-y rule, epsilon-floored accuracy).
  Vector pred(rows_.size());
  Vector y(rows_.size());
  std::size_t idx = 0;
  double yscale = 0.0;
  for (const Row& row : rows_) {
    pred[idx] = Mvlr::predict(f, row.x);
    y[idx] = row.y;
    yscale = std::max(yscale, std::fabs(row.y));
    ++idx;
  }
  f.r2 = r_squared(pred, y);
  f.accuracy =
      accuracy_pct_floored(pred, y, yscale > 0.0 ? 1e-9 * yscale : 1e-9);
  return f;
}

void IncrementalMvlr::clear() {
  xtx_ = Matrix(k_ + 1, k_ + 1);
  xty_.assign(k_ + 1, 0.0);
  rows_.clear();
}

}  // namespace repro::math
