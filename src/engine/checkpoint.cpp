#include "repro/engine/checkpoint.hpp"

#include <utility>

#include "repro/common/durable_file.hpp"

namespace repro::engine {

core::ModelStore store_of(const EngineSnapshot& snapshot) {
  core::ModelStore store;
  const std::vector<ProcessHandle> handles = snapshot.live_handles();
  store.profiles.reserve(handles.size());
  for (ProcessHandle h : handles) store.profiles.push_back(snapshot.profile(h));
  if (snapshot.has_power_model()) store.power_model = snapshot.power_model();
  return store;
}

std::string engine_state_text(const EngineSnapshot& snapshot) {
  return core::write_store_text(store_of(snapshot));
}

std::string checkpoint_text(const EngineSnapshot& snapshot,
                            std::uint64_t journal_next) {
  core::CheckpointMeta meta;
  meta.epoch = snapshot.epoch();
  meta.power_revision = snapshot.power_revision();
  meta.journal_next = journal_next;
  return core::write_checkpoint_text(meta, store_of(snapshot));
}

void save_checkpoint(const std::string& path, const EngineSnapshot& snapshot,
                     std::uint64_t journal_next) {
  common::atomic_write_file(path, checkpoint_text(snapshot, journal_next));
}

std::optional<core::Checkpoint> load_checkpoint(const std::string& path) {
  const std::optional<std::string> text = common::read_file(path);
  if (!text.has_value()) return std::nullopt;
  return core::read_checkpoint(*text);
}

void restore_checkpoint(ModelEngine& engine,
                        const core::Checkpoint& checkpoint) {
  engine.restore(checkpoint.store.profiles, checkpoint.store.power_model,
                 checkpoint.meta.power_revision, checkpoint.meta.epoch);
}

}  // namespace repro::engine
