#include "repro/engine/model_engine.hpp"

#include <cmath>
#include <utility>

#include "repro/common/ensure.hpp"
#include "repro/core/fill_model.hpp"
#include "repro/core/partitioning.hpp"

namespace repro::engine {

const core::ProcessProfile& EngineSnapshot::profile(
    ProcessHandle handle) const {
  return entry_of(handle).profile;
}

const core::PowerModel& EngineSnapshot::power_model() const {
  REPRO_ENSURE(power_.has_value(), "engine built without a power model");
  return *power_;
}

const EngineSnapshot::Entry& EngineSnapshot::entry_of(
    ProcessHandle handle) const {
  REPRO_ENSURE(handle < registry_.size() && registry_[handle] != nullptr,
               "unknown or collected process handle");
  return *registry_[handle];
}

std::vector<ProcessHandle> EngineSnapshot::live_handles() const {
  std::vector<ProcessHandle> handles;
  handles.reserve(live_);
  for (ProcessHandle h = 0; h < registry_.size(); ++h)
    if (registry_[h] != nullptr) handles.push_back(h);
  return handles;
}

ModelEngine::ModelEngine(sim::MachineConfig machine, EngineOptions options)
    : machine_(std::move(machine)),
      options_(options),
      solver_(machine_.l2.ways, options_.equilibrium) {
  machine_.validate();
  if (options_.threads != 1)
    pool_ = std::make_unique<common::ThreadPool>(options_.threads);
  // Publish the initial (empty, epoch 0) snapshot so snapshot() is
  // never null.
  common::MutexLock lock(builder_mutex_);
  auto snap = std::make_shared<EngineSnapshot>();
  published_.store(std::move(snap), std::memory_order_release);
}

ModelEngine::ModelEngine(sim::MachineConfig machine, core::PowerModel power,
                         EngineOptions options)
    : ModelEngine(std::move(machine), options) {
  REPRO_ENSURE(power.cores() == machine_.cores,
               "power model trained for a different core count");
  common::MutexLock lock(builder_mutex_);
  power_.emplace(std::move(power));
  publish();
}

ModelEngine::~ModelEngine() = default;

std::shared_ptr<const EngineSnapshot> ModelEngine::snapshot() const {
  return published_.load(std::memory_order_acquire);
}

void ModelEngine::publish() {
  auto snap = std::make_shared<EngineSnapshot>();
  snap->registry_ = registry_;  // shared entries: cheap pointer copies
  snap->by_name_ = by_name_;
  snap->power_ = power_;
  snap->power_revision_ = power_revision_;
  snap->epoch_ = ++epoch_;
  for (const auto& entry : snap->registry_)
    if (entry != nullptr) ++snap->live_;
  published_.store(std::move(snap), std::memory_order_release);
}

bool ModelEngine::has_power_model() const {
  return snapshot()->has_power_model();
}

core::PowerModel ModelEngine::power_model() const {
  return snapshot()->power_model();
}

std::uint64_t ModelEngine::power_revision() const {
  return snapshot()->power_revision();
}

ProcessHandle ModelEngine::register_process(core::ProcessProfile profile) {
  REPRO_ENSURE(!profile.name.empty(), "process needs a name");
  if (profile.features.name.empty()) profile.features.name = profile.name;
  // Validate up front: a bad histogram or SPI law fails here with the
  // process named, not deep inside a later fill-curve integral.
  profile.features.validate();

  common::MutexLock lock(builder_mutex_);
  const auto it = by_name_.find(profile.name);
  if (it != by_name_.end()) {
    // Replacement: same handle, fresh Entry — the embedded once_flag is
    // what invalidates the memoized artifacts. The old Entry stays
    // alive for as long as some snapshot still references it.
    registry_[it->second] = std::make_shared<Entry>(std::move(profile));
    // relaxed: monitoring counter; no reader orders state off it.
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    publish();
    return it->second;
  }
  ProcessHandle handle;
  if (!free_slots_.empty()) {
    // Recycle a collected slot so long-lived engines with process
    // churn keep a dense registry instead of growing without bound.
    handle = free_slots_.back();
    free_slots_.pop_back();
  } else {
    handle = static_cast<ProcessHandle>(registry_.size());
    registry_.emplace_back();
  }
  by_name_.emplace(profile.name, handle);
  registry_[handle] = std::make_shared<Entry>(std::move(profile));
  publish();
  return handle;
}

void ModelEngine::install(ProcessHandle handle, core::ProcessProfile profile) {
  REPRO_ENSURE(handle < registry_.size() && registry_[handle] != nullptr,
               "unknown process handle");
  const std::string old_name = registry_[handle]->profile.name;
  if (profile.name != old_name) {
    const auto it = by_name_.find(profile.name);
    REPRO_ENSURE(it == by_name_.end() || it->second == handle,
                 "rename collides with another registered process");
    by_name_.erase(old_name);
    by_name_.emplace(profile.name, handle);
  }
  // Fresh Entry = fresh once_flag: the next prediction that touches
  // this handle rebuilds the fill/growth curves from the new revision.
  registry_[handle] = std::make_shared<Entry>(std::move(profile));
  // relaxed: monitoring counter; no reader orders state off it.
  cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

ApplyResult ModelEngine::try_apply(Revision revision) {
  ApplyResult result;
  const bool has_profile = revision.profile.has_value();
  const bool has_power = revision.power.has_value();
  if (has_profile == has_power) {
    result.reason = has_profile
                        ? "revision carries both a profile and a power payload"
                        : "revision carries no payload";
    result.epoch = snapshot()->epoch();
    return result;
  }

  if (has_profile) {
    core::ProcessProfile profile = std::move(revision.profile->profile);
    const ProcessHandle handle = revision.profile->handle;
    // Validate before taking the builder lock or mutating anything: a
    // refusal leaves the registry, the name index, and every memoized
    // artifact exactly as they were, and publishes nothing.
    try {
      REPRO_ENSURE(!profile.name.empty(), "process needs a name");
      if (profile.features.name.empty()) profile.features.name = profile.name;
      profile.features.validate();
      // Fit-frequency gate: Eq. 3 only holds at the clock the profile
      // was fitted at, so a revision fitted at a clock this machine
      // cannot run at would silently mis-predict every query. Legacy
      // profiles (fit_frequency 0) predate the gate and pass.
      const Hertz fit = profile.features.fit_frequency;
      REPRO_ENSURE(fit <= 0.0 || machine_.can_run_at(fit),
                   "fit-frequency mismatch: profile '" + profile.name +
                       "' fitted at " + std::to_string(fit) +
                       " Hz, which is not an operating point of machine '" +
                       machine_.name + "'");
      common::MutexLock lock(builder_mutex_);
      // install() still validates handle/rename under the lock; those
      // checks need the builder state but run before any mutation.
      install(handle, std::move(profile));
      publish();
      result.applied = true;
      result.epoch = epoch_;
    } catch (const Error& e) {
      result.reason = e.what();
      result.epoch = snapshot()->epoch();
    }
    return result;
  }

  core::PowerModel power = std::move(*revision.power);
  if (power.cores() != machine_.cores) {
    result.reason = "power revision trained for a different core count";
  } else if (!(std::isfinite(power.idle_total()) && power.idle_total() > 0.0)) {
    result.reason = "power revision needs a positive finite idle power";
  } else {
    for (double c : power.coefficients())
      if (!std::isfinite(c)) {
        result.reason = "power revision has a non-finite coefficient";
        break;
      }
  }
  if (result.reason.empty()) {
    common::MutexLock lock(builder_mutex_);
    if (!power_.has_value()) {
      result.reason =
          "cannot revise power on an engine built without a power model";
      result.epoch = epoch_;
    } else {
      power_.emplace(std::move(power));
      ++power_revision_;
      publish();
      result.applied = true;
      result.epoch = epoch_;
    }
    return result;
  }
  result.epoch = snapshot()->epoch();
  return result;
}

void ModelEngine::restore(std::vector<core::ProcessProfile> profiles,
                          std::optional<core::PowerModel> power,
                          std::uint64_t power_revision, std::uint64_t epoch) {
  // Validate everything before taking the lock: a refused restore must
  // leave the fresh engine exactly as constructed.
  for (core::ProcessProfile& p : profiles) {
    REPRO_ENSURE(!p.name.empty(), "process needs a name");
    if (p.features.name.empty()) p.features.name = p.name;
    p.features.validate();
  }
  if (power.has_value())
    REPRO_ENSURE(power->cores() == machine_.cores,
                 "checkpoint power model trained for a different core count");

  common::MutexLock lock(builder_mutex_);
  REPRO_ENSURE(registry_.empty() && power_revision_ == 0,
               "restore requires a freshly-constructed engine");
  if (power.has_value()) {
    REPRO_ENSURE(
        power_.has_value(),
        "checkpoint carries a power model but the engine was built "
        "without one");
    power_.emplace(std::move(*power));
  }
  for (core::ProcessProfile& p : profiles) {
    const auto handle = static_cast<ProcessHandle>(registry_.size());
    REPRO_ENSURE(by_name_.emplace(p.name, handle).second,
                 "checkpoint registers a duplicate name: " + p.name);
    registry_.push_back(std::make_shared<Entry>(std::move(p)));
  }
  power_revision_ = power_revision;
  // publish() bumps epoch_ by one; land at `epoch` or later so the
  // counter never moves backwards across a crash.
  if (epoch > 0 && epoch - 1 > epoch_) epoch_ = epoch - 1;
  publish();
}

std::size_t ModelEngine::collect_garbage(
    const std::function<bool(ProcessHandle)>& keep) {
  REPRO_ENSURE(static_cast<bool>(keep), "empty keep predicate");
  common::MutexLock lock(builder_mutex_);
  std::size_t collected = 0;
  for (ProcessHandle h = 0; h < registry_.size(); ++h) {
    if (registry_[h] == nullptr) continue;  // already collected
    if (keep(h)) continue;
    by_name_.erase(registry_[h]->profile.name);
    // Dropping the builder's reference; profiles and memoized
    // artifacts free once the last snapshot holding them is released.
    registry_[h].reset();
    free_slots_.push_back(h);
    // relaxed: monitoring counter; no reader orders state off it.
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    ++collected;
  }
  if (collected > 0) publish();
  return collected;
}

std::optional<ProcessHandle> ModelEngine::find(const std::string& name) const {
  return snapshot()->find(name);
}

core::ProcessProfile ModelEngine::profile(ProcessHandle handle) const {
  return snapshot()->profile(handle);
}

std::size_t ModelEngine::process_count() const {
  return snapshot()->process_count();
}

const ModelEngine::Artifacts& ModelEngine::artifacts_of(
    const Entry& entry) const {
  bool built_now = false;
  std::call_once(entry.once, [&] {
    Artifacts a;
    a.fill = core::fill_curve(entry.profile.features.histogram,
                              machine_.l2.ways,
                              options_.equilibrium.mpa_floor);
    // The fill curve is strictly increasing (each Δn = ΔS / MPA(S) is
    // positive), so swapping the axes tabulates G = (G⁻¹)⁻¹.
    a.growth = math::PiecewiseLinear(
        std::vector<double>(a.fill.ys().begin(), a.fill.ys().end()),
        std::vector<double>(a.fill.xs().begin(), a.fill.xs().end()));
    entry.artifacts = std::move(a);
    built_now = true;
  });
  // The artifact itself is published by the call_once above, not by
  // this counter.
  (built_now ? cache_misses_ : cache_hits_)
      .fetch_add(1, std::memory_order_relaxed);  // relaxed: tally only
  return entry.artifacts;
}

SystemPrediction ModelEngine::predict_on(const EngineSnapshot& snapshot,
                                         const CoScheduleQuery& query) const {
  query.assignment.validate(machine_.cores, snapshot.registry_.size());
  if (!query.partition.empty())
    REPRO_ENSURE(query.partition.size() == machine_.dies,
                 "partition needs one quota list per die");
  if (!query.warm_start.empty())
    REPRO_ENSURE(query.warm_start.size() == query.assignment.process_count(),
                 "warm start needs one seed per scheduled process");
  if (!query.core_frequency.empty()) {
    REPRO_ENSURE(query.core_frequency.size() == machine_.cores,
                 "core_frequency needs one clock per core");
    for (Hertz hz : query.core_frequency)
      REPRO_ENSURE(hz > 0.0, "query clocks must be positive");
  }
  // The clock each core is priced at: the query's what-if override, or
  // the machine's configured (possibly heterogeneous) frequencies.
  const auto clock_of = [&](CoreId c) -> Hertz {
    return query.core_frequency.empty() ? machine_.frequency_of(c)
                                        : query.core_frequency[c];
  };

  // Global (core, slot) position of each core's first process, so a
  // die's warm-start seeds can be sliced out of the flat vector even
  // when the machine maps cores to dies non-contiguously.
  std::vector<std::size_t> slot_offset(machine_.cores + 1, 0);
  for (CoreId c = 0; c < machine_.cores; ++c)
    slot_offset[c + 1] = slot_offset[c] + query.assignment.per_core[c].size();

  const bool has_power = snapshot.power_.has_value();
  SystemPrediction out;
  out.processes.reserve(query.assignment.process_count());
  if (has_power) {
    out.core_power.assign(machine_.cores, snapshot.power_->idle_core());
    out.total_power = snapshot.power_->idle_total();
  }

  for (DieId die = 0; die < machine_.dies; ++die) {
    // Gather the die's processes in (core, slot) order, with the CPU
    // share of their run queue and their memoized fill curves.
    struct Slot {
      ProcessHandle handle;
      CoreId core;
    };
    std::vector<Slot> slots;
    std::vector<core::FeatureVector> features;
    std::vector<double> shares;
    std::vector<const math::PiecewiseLinear*> fill;
    std::vector<double> seeds;
    for (CoreId c : machine_.cores_on_die(die)) {
      const std::size_t q = query.assignment.per_core[c].size();
      for (std::size_t slot = 0; slot < q; ++slot) {
        const std::size_t idx = query.assignment.per_core[c][slot];
        const Entry& entry =
            snapshot.entry_of(static_cast<ProcessHandle>(idx));
        slots.push_back({static_cast<ProcessHandle>(idx), c});
        // Rescale Eq. 3 to the core's clock on the per-query copy; the
        // memoized fill/growth artifacts stay valid because they are
        // functions of the histogram only, which is frequency-free.
        // at_frequency is an exact no-op at the profile's own clock,
        // and a legacy profile (fit_frequency 0) is used as-is — both
        // keep the pre-frequency-aware results bit-identical.
        const core::FeatureVector& fv = entry.profile.features;
        const Hertz clock = clock_of(c);
        features.push_back(fv.fit_frequency > 0.0 ? fv.at_frequency(clock)
                                                  : fv);
        shares.push_back(1.0 / static_cast<double>(q));
        fill.push_back(&artifacts_of(entry).fill);
        if (!query.warm_start.empty())
          seeds.push_back(query.warm_start[slot_offset[c] + slot]);
      }
    }
    if (slots.empty()) continue;

    std::vector<core::ProcessPrediction> eq;
    const bool partitioned =
        !query.partition.empty() && !query.partition[die].empty();
    if (partitioned) {
      const std::vector<std::uint32_t>& quotas = query.partition[die];
      REPRO_ENSURE(quotas.size() == slots.size(),
                   "one way quota per process on the die");
      std::uint32_t claimed = 0;
      for (std::uint32_t w : quotas) claimed += w;
      REPRO_ENSURE(claimed <= machine_.l2.ways,
                   "partition exceeds the cache ways");
      eq = core::predict_partitioned(features, quotas);
    } else {
      core::SolveOptions solve_options;
      solve_options.method = options_.method;
      solve_options.cpu_share = shares;
      solve_options.fill = fill;
      solve_options.warm_start = seeds;  // empty = cold, bit-identical
      core::SolveStats stats;
      solve_options.stats = &stats;
      if (options_.method == core::SolveOptions::Method::kNewton) {
        try {
          eq = solver_.solve(features, solve_options);
        } catch (const Error&) {
          // Newton stalls on nearly-flat MPA curves — the reason
          // bisection is the repo-wide default. A Newton-mode engine
          // (chosen for cheap warm-started re-solves) falls back to
          // the robust method instead of failing the query.
          solve_options.method = core::SolveOptions::Method::kBisection;
          eq = solver_.solve(features, solve_options);
        }
      } else {
        eq = solver_.solve(features, solve_options);
      }
      out.solver_iterations += stats.iterations;
    }

    // Assemble §4/§5: core power is the time average over the run
    // queue; the package total adds each busy core's dynamic power.
    std::size_t cursor = 0;
    for (CoreId c : machine_.cores_on_die(die)) {
      const std::size_t q = query.assignment.per_core[c].size();
      if (q == 0) continue;
      Watts dyn = 0.0;
      double ips = 0.0;
      for (std::size_t slot = 0; slot < q; ++slot, ++cursor) {
        ProcessOperatingPoint point;
        point.handle = slots[cursor].handle;
        point.core = c;
        point.cpu_share = shares[cursor];
        point.prediction = eq[cursor];
        if (has_power)
          point.dynamic_power = core::process_dynamic_power(
              *snapshot.power_, snapshot.entry_of(point.handle).profile.alone,
              eq[cursor].spi, eq[cursor].mpa);
        dyn += point.dynamic_power;
        ips += 1.0 / eq[cursor].spi;
        out.processes.push_back(std::move(point));
      }
      const double avg_dyn = dyn / static_cast<double>(q);
      if (has_power) {
        out.core_power[c] += avg_dyn;
        out.total_power += avg_dyn;
      }
      out.throughput_ips += ips / static_cast<double>(q);
    }
  }
  return out;
}

SystemPrediction ModelEngine::predict(const CoScheduleQuery& query) const {
  // Pin the current epoch for the duration of the solve; concurrent
  // revisions publish fresh snapshots without touching this one.
  const std::shared_ptr<const EngineSnapshot> snap = snapshot();
  return predict_on(*snap, query);
}

SystemPrediction ModelEngine::predict(const EngineSnapshot& snapshot,
                                      const CoScheduleQuery& query) const {
  return predict_on(snapshot, query);
}

std::vector<SystemPrediction> ModelEngine::predict_batch(
    std::span<const CoScheduleQuery> queries) const {
  // One snapshot resolve for the whole batch: every candidate prices
  // against the same epoch no matter how many revisions land mid-run.
  const std::shared_ptr<const EngineSnapshot> snap = snapshot();
  return predict_batch(*snap, queries);
}

std::vector<SystemPrediction> ModelEngine::predict_batch(
    const EngineSnapshot& snapshot,
    std::span<const CoScheduleQuery> queries) const {
  std::vector<SystemPrediction> out(queries.size());
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i)
      out[i] = predict_on(snapshot, queries[i]);
  } else {
    pool_->parallel_for(queries.size(), [&](std::size_t i) {
      out[i] = predict_on(snapshot, queries[i]);
    });
  }
  return out;
}

ModelEngine::CacheStats ModelEngine::cache_stats() const {
  CacheStats s;
  // relaxed: statistics snapshot; the three counters need not be
  // mutually consistent and order nothing.
  s.hits = cache_hits_.load(std::memory_order_relaxed);
  s.misses = cache_misses_.load(std::memory_order_relaxed);  // relaxed: ditto
  s.invalidations =
      cache_invalidations_.load(std::memory_order_relaxed);  // relaxed: ditto
  return s;
}

}  // namespace repro::engine
