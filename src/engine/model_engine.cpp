#include "repro/engine/model_engine.hpp"

#include <cmath>
#include <utility>

#include "repro/common/ensure.hpp"
#include "repro/core/fill_model.hpp"
#include "repro/core/partitioning.hpp"

namespace repro::engine {

ModelEngine::ModelEngine(sim::MachineConfig machine, EngineOptions options)
    : machine_(std::move(machine)),
      options_(options),
      solver_(machine_.l2.ways, options_.equilibrium) {
  machine_.validate();
  if (options_.threads != 1)
    pool_ = std::make_unique<common::ThreadPool>(options_.threads);
}

ModelEngine::ModelEngine(sim::MachineConfig machine, core::PowerModel power,
                         EngineOptions options)
    : ModelEngine(std::move(machine), options) {
  REPRO_ENSURE(power.cores() == machine_.cores,
               "power model trained for a different core count");
  common::ExclusiveLock lock(registry_mutex_);
  power_.emplace(std::move(power));
}

ModelEngine::~ModelEngine() = default;

bool ModelEngine::has_power_model() const {
  common::SharedLock lock(registry_mutex_);
  return power_.has_value();
}

core::PowerModel ModelEngine::power_model() const {
  common::SharedLock lock(registry_mutex_);
  REPRO_ENSURE(power_.has_value(), "engine built without a power model");
  return *power_;
}

std::uint64_t ModelEngine::power_revision() const {
  common::SharedLock lock(registry_mutex_);
  return power_revision_;
}

void ModelEngine::update_power(core::PowerModel power) {
  // Validate before taking the lock or mutating anything: a throw here
  // leaves the installed model (and its revision counter) untouched.
  REPRO_ENSURE(power.cores() == machine_.cores,
               "power revision trained for a different core count");
  REPRO_ENSURE(std::isfinite(power.idle_total()) && power.idle_total() > 0.0,
               "power revision needs a positive finite idle power");
  for (double c : power.coefficients())
    REPRO_ENSURE(std::isfinite(c),
                 "power revision has a non-finite coefficient");
  common::ExclusiveLock lock(registry_mutex_);
  REPRO_ENSURE(power_.has_value(),
               "cannot revise power on an engine built without a power model");
  power_.emplace(std::move(power));
  ++power_revision_;
}

bool ModelEngine::try_update_power(core::PowerModel power) {
  try {
    update_power(std::move(power));
    return true;
  } catch (const Error&) {
    return false;
  }
}

ProcessHandle ModelEngine::register_process(core::ProcessProfile profile) {
  REPRO_ENSURE(!profile.name.empty(), "process needs a name");
  if (profile.features.name.empty()) profile.features.name = profile.name;
  // Validate up front: a bad histogram or SPI law fails here with the
  // process named, not deep inside a later fill-curve integral.
  profile.features.validate();

  common::ExclusiveLock lock(registry_mutex_);
  const auto it = by_name_.find(profile.name);
  if (it != by_name_.end()) {
    // Replacement: same handle, fresh Entry — the embedded once_flag is
    // what invalidates the memoized artifacts.
    registry_[it->second] = std::make_unique<Entry>(std::move(profile));
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  ProcessHandle handle;
  if (!free_slots_.empty()) {
    // Recycle a collected slot so long-lived engines with process
    // churn keep a dense registry instead of growing without bound.
    handle = free_slots_.back();
    free_slots_.pop_back();
  } else {
    handle = static_cast<ProcessHandle>(registry_.size());
    registry_.emplace_back();
  }
  by_name_.emplace(profile.name, handle);
  registry_[handle] = std::make_unique<Entry>(std::move(profile));
  return handle;
}

void ModelEngine::install(ProcessHandle handle, core::ProcessProfile profile) {
  REPRO_ENSURE(handle < registry_.size() && registry_[handle] != nullptr,
               "unknown process handle");
  const std::string old_name = registry_[handle]->profile.name;
  if (profile.name != old_name) {
    const auto it = by_name_.find(profile.name);
    REPRO_ENSURE(it == by_name_.end() || it->second == handle,
                 "rename collides with another registered process");
    by_name_.erase(old_name);
    by_name_.emplace(profile.name, handle);
  }
  // Fresh Entry = fresh once_flag: the next prediction that touches
  // this handle rebuilds the fill/growth curves from the new revision.
  registry_[handle] = std::make_unique<Entry>(std::move(profile));
  cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

void ModelEngine::update_process(ProcessHandle handle,
                                 core::ProcessProfile profile) {
  REPRO_ENSURE(!profile.name.empty(), "process needs a name");
  if (profile.features.name.empty()) profile.features.name = profile.name;
  profile.features.validate();

  common::ExclusiveLock lock(registry_mutex_);
  install(handle, std::move(profile));
}

std::size_t ModelEngine::collect_garbage(
    const std::function<bool(ProcessHandle)>& keep) {
  REPRO_ENSURE(static_cast<bool>(keep), "empty keep predicate");
  common::ExclusiveLock lock(registry_mutex_);
  std::size_t collected = 0;
  for (ProcessHandle h = 0; h < registry_.size(); ++h) {
    if (registry_[h] == nullptr) continue;  // already collected
    // The predicate runs under the registry's writer lock: it must not
    // call back into this engine (the lock is not reentrant).
    if (keep(h)) continue;
    by_name_.erase(registry_[h]->profile.name);
    registry_[h].reset();  // frees the profile and memoized artifacts
    free_slots_.push_back(h);
    cache_invalidations_.fetch_add(1, std::memory_order_relaxed);
    ++collected;
  }
  return collected;
}

bool ModelEngine::try_update_process(ProcessHandle handle,
                                     core::ProcessProfile profile) {
  // update_process validates before taking the registry lock or
  // mutating anything, so a throw here leaves the registry, the name
  // index, and every memoized artifact exactly as they were.
  try {
    update_process(handle, std::move(profile));
    return true;
  } catch (const Error&) {
    return false;
  }
}

std::optional<ProcessHandle> ModelEngine::find(const std::string& name) const {
  common::SharedLock lock(registry_mutex_);
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

const ModelEngine::Entry& ModelEngine::entry_of(ProcessHandle handle) const {
  REPRO_ENSURE(handle < registry_.size() && registry_[handle] != nullptr,
               "unknown or collected process handle");
  return *registry_[handle];
}

core::ProcessProfile ModelEngine::profile(ProcessHandle handle) const {
  common::SharedLock lock(registry_mutex_);
  return entry_of(handle).profile;
}

std::size_t ModelEngine::process_count() const {
  common::SharedLock lock(registry_mutex_);
  std::size_t live = 0;
  for (const auto& entry : registry_)
    if (entry != nullptr) ++live;
  return live;
}

const ModelEngine::Artifacts& ModelEngine::artifacts_of(
    const Entry& entry) const {
  bool built_now = false;
  std::call_once(entry.once, [&] {
    Artifacts a;
    a.fill = core::fill_curve(entry.profile.features.histogram,
                              machine_.l2.ways,
                              options_.equilibrium.mpa_floor);
    // The fill curve is strictly increasing (each Δn = ΔS / MPA(S) is
    // positive), so swapping the axes tabulates G = (G⁻¹)⁻¹.
    a.growth = math::PiecewiseLinear(
        std::vector<double>(a.fill.ys().begin(), a.fill.ys().end()),
        std::vector<double>(a.fill.xs().begin(), a.fill.xs().end()));
    entry.artifacts = std::move(a);
    built_now = true;
  });
  (built_now ? cache_misses_ : cache_hits_)
      .fetch_add(1, std::memory_order_relaxed);
  return entry.artifacts;
}

SystemPrediction ModelEngine::predict_locked(
    const CoScheduleQuery& query) const {
  query.assignment.validate(machine_.cores, registry_.size());
  if (!query.partition.empty())
    REPRO_ENSURE(query.partition.size() == machine_.dies,
                 "partition needs one quota list per die");
  if (!query.warm_start.empty())
    REPRO_ENSURE(query.warm_start.size() == query.assignment.process_count(),
                 "warm start needs one seed per scheduled process");

  // Global (core, slot) position of each core's first process, so a
  // die's warm-start seeds can be sliced out of the flat vector even
  // when the machine maps cores to dies non-contiguously.
  std::vector<std::size_t> slot_offset(machine_.cores + 1, 0);
  for (CoreId c = 0; c < machine_.cores; ++c)
    slot_offset[c + 1] = slot_offset[c] + query.assignment.per_core[c].size();

  SystemPrediction out;
  out.processes.reserve(query.assignment.process_count());
  if (power_.has_value()) {
    out.core_power.assign(machine_.cores, power_->idle_core());
    out.total_power = power_->idle_total();
  }

  for (DieId die = 0; die < machine_.dies; ++die) {
    // Gather the die's processes in (core, slot) order, with the CPU
    // share of their run queue and their memoized fill curves.
    struct Slot {
      ProcessHandle handle;
      CoreId core;
    };
    std::vector<Slot> slots;
    std::vector<core::FeatureVector> features;
    std::vector<double> shares;
    std::vector<const math::PiecewiseLinear*> fill;
    std::vector<double> seeds;
    for (CoreId c : machine_.cores_on_die(die)) {
      const std::size_t q = query.assignment.per_core[c].size();
      for (std::size_t slot = 0; slot < q; ++slot) {
        const std::size_t idx = query.assignment.per_core[c][slot];
        const Entry& entry = entry_of(static_cast<ProcessHandle>(idx));
        slots.push_back({static_cast<ProcessHandle>(idx), c});
        features.push_back(entry.profile.features);
        shares.push_back(1.0 / static_cast<double>(q));
        fill.push_back(&artifacts_of(entry).fill);
        if (!query.warm_start.empty())
          seeds.push_back(query.warm_start[slot_offset[c] + slot]);
      }
    }
    if (slots.empty()) continue;

    std::vector<core::ProcessPrediction> eq;
    const bool partitioned =
        !query.partition.empty() && !query.partition[die].empty();
    if (partitioned) {
      const std::vector<std::uint32_t>& quotas = query.partition[die];
      REPRO_ENSURE(quotas.size() == slots.size(),
                   "one way quota per process on the die");
      std::uint32_t claimed = 0;
      for (std::uint32_t w : quotas) claimed += w;
      REPRO_ENSURE(claimed <= machine_.l2.ways,
                   "partition exceeds the cache ways");
      eq = core::predict_partitioned(features, quotas);
    } else {
      core::SolveOptions solve_options;
      solve_options.method = options_.method;
      solve_options.cpu_share = shares;
      solve_options.fill = fill;
      solve_options.warm_start = seeds;  // empty = cold, bit-identical
      core::SolveStats stats;
      solve_options.stats = &stats;
      if (options_.method == core::SolveOptions::Method::kNewton) {
        try {
          eq = solver_.solve(features, solve_options);
        } catch (const Error&) {
          // Newton stalls on nearly-flat MPA curves — the reason
          // bisection is the repo-wide default. A Newton-mode engine
          // (chosen for cheap warm-started re-solves) falls back to
          // the robust method instead of failing the query.
          solve_options.method = core::SolveOptions::Method::kBisection;
          eq = solver_.solve(features, solve_options);
        }
      } else {
        eq = solver_.solve(features, solve_options);
      }
      out.solver_iterations += stats.iterations;
    }

    // Assemble §4/§5: core power is the time average over the run
    // queue; the package total adds each busy core's dynamic power.
    std::size_t cursor = 0;
    for (CoreId c : machine_.cores_on_die(die)) {
      const std::size_t q = query.assignment.per_core[c].size();
      if (q == 0) continue;
      Watts dyn = 0.0;
      double ips = 0.0;
      for (std::size_t slot = 0; slot < q; ++slot, ++cursor) {
        ProcessOperatingPoint point;
        point.handle = slots[cursor].handle;
        point.core = c;
        point.cpu_share = shares[cursor];
        point.prediction = eq[cursor];
        if (power_.has_value())
          point.dynamic_power = core::process_dynamic_power(
              *power_, entry_of(point.handle).profile.alone,
              eq[cursor].spi, eq[cursor].mpa);
        dyn += point.dynamic_power;
        ips += 1.0 / eq[cursor].spi;
        out.processes.push_back(std::move(point));
      }
      const double avg_dyn = dyn / static_cast<double>(q);
      if (power_.has_value()) {
        out.core_power[c] += avg_dyn;
        out.total_power += avg_dyn;
      }
      out.throughput_ips += ips / static_cast<double>(q);
    }
  }
  return out;
}

SystemPrediction ModelEngine::predict(const CoScheduleQuery& query) const {
  common::SharedLock lock(registry_mutex_);
  return predict_locked(query);
}

std::vector<SystemPrediction> ModelEngine::predict_batch(
    std::span<const CoScheduleQuery> queries) const {
  std::vector<SystemPrediction> out(queries.size());
  // One reader lock for the whole batch: writers (register_process)
  // are excluded while pool workers read the registry lock-free.
  common::SharedLock lock(registry_mutex_);
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i)
      out[i] = predict_locked(queries[i]);
  } else {
    // The REQUIRES_SHARED on the task records that the batch thread
    // holds the reader lock on the workers' behalf for the whole fan-out
    // (parallel_for returns before the lock is dropped).
    pool_->parallel_for(
        queries.size(),
        [&](std::size_t i) REPRO_REQUIRES_SHARED(registry_mutex_) {
          out[i] = predict_locked(queries[i]);
        });
  }
  return out;
}

ModelEngine::CacheStats ModelEngine::cache_stats() const {
  CacheStats s;
  s.hits = cache_hits_.load(std::memory_order_relaxed);
  s.misses = cache_misses_.load(std::memory_order_relaxed);
  s.invalidations = cache_invalidations_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace repro::engine
