#include "repro/engine/governor.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "repro/common/ensure.hpp"

namespace repro::engine {

namespace {

/// Cores hosting at least one process, ascending. Idle cores draw the
/// same Eq. 9 idle share at every level, so only these get a knob.
std::vector<CoreId> busy_cores(const core::Assignment& a) {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < a.per_core.size(); ++c)
    if (!a.per_core[c].empty()) out.push_back(c);
  return out;
}

/// levels^count without overflow drama: saturates at `cap + 1`.
std::size_t tuple_count(std::size_t levels, std::size_t count,
                        std::size_t cap) {
  std::size_t total = 1;
  for (std::size_t i = 0; i < count; ++i) {
    if (total > cap / levels + 1) return cap + 1;
    total *= levels;
  }
  return total;
}

}  // namespace

Governor::Governor(const ModelEngine& engine, GovernorOptions options)
    : engine_(engine), options_(options) {
  REPRO_ENSURE(engine_.has_power_model(),
               "governor needs an engine with a power model: the cap is a "
               "power constraint");
  REPRO_ENSURE(options_.power_cap > 0.0, "governor needs a positive cap");
  REPRO_ENSURE(options_.margin >= 0.0 && options_.margin < 1.0,
               "planning margin must be in [0, 1)");
  REPRO_ENSURE(options_.max_candidates > 0, "candidate budget must be > 0");
  const sim::MachineConfig& m = engine_.machine();
  levels_ = m.dvfs_levels.empty() ? std::vector<Hertz>{m.frequency}
                                  : m.dvfs_levels;
}

GovernorDecision Governor::plan(
    std::span<const ProcessHandle> processes) const {
  REPRO_ENSURE(!processes.empty(), "governor needs processes to place");
  const std::uint32_t cores = engine_.machine().cores;

  std::vector<core::Assignment> assignments;
  const std::size_t placements =
      tuple_count(cores, processes.size(), options_.max_candidates);
  if (options_.search_assignments &&
      placements <= options_.max_candidates) {
    // Every process-to-core placement, enumerated as a base-`cores`
    // odometer over the process list (process 0 is the slowest digit)
    // — deterministic, so a plan is replayable.
    std::vector<CoreId> digit(processes.size(), 0);
    while (true) {
      core::Assignment a = core::Assignment::empty(cores);
      for (std::size_t p = 0; p < processes.size(); ++p)
        a.per_core[digit[p]].push_back(processes[p]);
      assignments.push_back(std::move(a));
      std::size_t p = processes.size();
      while (p > 0 && ++digit[p - 1] == cores) digit[--p] = 0;
      if (p == 0) break;
    }
  } else {
    // Over budget (or pinned): balanced round-robin placement only,
    // frequencies stay the whole search space.
    core::Assignment a = core::Assignment::empty(cores);
    for (std::size_t p = 0; p < processes.size(); ++p)
      a.per_core[p % cores].push_back(processes[p]);
    assignments.push_back(std::move(a));
  }
  return choose(std::move(assignments));
}

GovernorDecision Governor::plan(const core::Assignment& assignment) const {
  return choose({assignment});
}

GovernorDecision Governor::choose(
    std::vector<core::Assignment> assignments) const {
  REPRO_ENSURE(!assignments.empty(), "governor needs candidates");
  const std::uint32_t cores = engine_.machine().cores;
  const Watts planning_cap = options_.power_cap * (1.0 - options_.margin);
  const std::size_t nlevels = levels_.size();

  // Candidate count under full per-core tuples; degrade to uniform
  // tuples when it blows the budget.
  std::size_t full_total = 0;
  for (const core::Assignment& a : assignments) {
    full_total += tuple_count(nlevels, busy_cores(a).size(),
                              options_.max_candidates);
    if (full_total > options_.max_candidates) break;
  }
  const bool exhaustive = full_total <= options_.max_candidates;

  struct Candidate {
    std::size_t assignment = 0;
    std::vector<Hertz> freq;  // per core
  };
  std::vector<Candidate> candidates;
  std::vector<CoScheduleQuery> queries;
  const auto add_candidate = [&](std::size_t idx, std::vector<Hertz> freq) {
    CoScheduleQuery q;
    q.assignment = assignments[idx];
    q.core_frequency = freq;
    queries.push_back(std::move(q));
    candidates.push_back({idx, std::move(freq)});
  };

  for (std::size_t idx = 0; idx < assignments.size(); ++idx) {
    const std::vector<CoreId> busy = busy_cores(assignments[idx]);
    // Idle cores contribute the same idle share at any clock; pin them
    // to the lowest level so the reported operating point is the one
    // an implementation would actually program.
    std::vector<Hertz> base(cores, levels_.front());
    if (exhaustive) {
      std::vector<std::size_t> digit(busy.size(), 0);
      while (true) {
        std::vector<Hertz> freq = base;
        for (std::size_t b = 0; b < busy.size(); ++b)
          freq[busy[b]] = levels_[digit[b]];
        add_candidate(idx, std::move(freq));
        std::size_t b = busy.size();
        while (b > 0 && ++digit[b - 1] == nlevels) digit[--b] = 0;
        if (b == 0) break;
      }
    } else {
      for (Hertz level : levels_) {
        std::vector<Hertz> freq = base;
        for (CoreId c : busy) freq[c] = level;
        add_candidate(idx, std::move(freq));
      }
    }
  }

  // One snapshot for the whole plan: every candidate prices against
  // the same epoch.
  const std::shared_ptr<const EngineSnapshot> snap = engine_.snapshot();
  std::vector<SystemPrediction> priced =
      engine_.predict_batch(*snap, queries);
  std::size_t evaluated = priced.size();

  // Feasible candidate with the highest predicted throughput; ties
  // break toward lower power, then enumeration order (deterministic).
  // If nothing fits the cap, fall back to the power-minimal point.
  std::size_t best = 0;
  bool best_feasible = false;
  for (std::size_t i = 0; i < priced.size(); ++i) {
    const bool fits = priced[i].total_power <= planning_cap;
    if (fits && !best_feasible) {
      best = i;
      best_feasible = true;
      continue;
    }
    if (fits == best_feasible) {
      const SystemPrediction& a = priced[i];
      const SystemPrediction& b = priced[best];
      const bool better =
          best_feasible
              ? (a.throughput_ips > b.throughput_ips ||
                 (a.throughput_ips == b.throughput_ips &&
                  a.total_power < b.total_power))
              : a.total_power < b.total_power;
      if (better) best = i;
    }
  }

  Candidate chosen = candidates[best];
  SystemPrediction chosen_pred = priced[best];

  if (!exhaustive && best_feasible) {
    // Greedy refinement of the uniform-frequency winner: step one busy
    // core up a level at a time, keeping the best feasible variant,
    // until no single step helps. Bounded by busy·levels predictions.
    const std::vector<CoreId> busy = busy_cores(assignments[chosen.assignment]);
    bool improved = true;
    while (improved) {
      improved = false;
      std::vector<CoScheduleQuery> variants;
      std::vector<std::vector<Hertz>> variant_freqs;
      for (CoreId c : busy) {
        const auto at = std::find(levels_.begin(), levels_.end(),
                                  chosen.freq[c]);
        if (at == levels_.end() || at + 1 == levels_.end()) continue;
        std::vector<Hertz> freq = chosen.freq;
        freq[c] = *(at + 1);
        CoScheduleQuery q;
        q.assignment = assignments[chosen.assignment];
        q.core_frequency = freq;
        variants.push_back(std::move(q));
        variant_freqs.push_back(std::move(freq));
      }
      if (variants.empty()) break;
      const std::vector<SystemPrediction> stepped =
          engine_.predict_batch(*snap, variants);
      evaluated += stepped.size();
      for (std::size_t i = 0; i < stepped.size(); ++i) {
        if (stepped[i].total_power > planning_cap) continue;
        if (stepped[i].throughput_ips <= chosen_pred.throughput_ips) continue;
        chosen.freq = variant_freqs[i];
        chosen_pred = stepped[i];
        improved = true;
      }
    }
  }

  GovernorDecision decision;
  decision.assignment = assignments[chosen.assignment];
  decision.core_frequency = std::move(chosen.freq);
  decision.prediction = std::move(chosen_pred);
  decision.feasible = best_feasible;
  decision.exhaustive = exhaustive;
  decision.evaluated = evaluated;
  return decision;
}

}  // namespace repro::engine
