#include "repro/core/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::core {

void FeatureVector::validate() const {
  // Carry the process identity: a bad histogram or SPI law otherwise
  // only surfaces deep inside a fill-curve integral with no hint of
  // which of the co-scheduled processes is broken.
  const std::string who =
      name.empty() ? std::string("feature vector") : "process '" + name + "'";
  REPRO_ENSURE(std::isfinite(api) && std::isfinite(alpha) &&
                   std::isfinite(beta),
               who + ": API/alpha/beta must be finite");
  REPRO_ENSURE(api > 0.0, who + ": API must be positive");
  REPRO_ENSURE(beta > 0.0, who + ": beta (zero-miss SPI) must be positive");
  REPRO_ENSURE(alpha > -beta, who + ": SPI law must stay positive on [0, 1]");
  REPRO_ENSURE(std::isfinite(fit_frequency) && fit_frequency >= 0.0,
               who + ": fit frequency must be finite and nonnegative");
}

Spi FeatureVector::spi_at(Mpa mpa, Hertz hz) const {
  REPRO_ENSURE(fit_frequency > 0.0,
               "spi_at(mpa, hz) needs a recorded fit frequency");
  REPRO_ENSURE(hz > 0.0, "target frequency must be positive");
  return spi_at(mpa) * (fit_frequency / hz);
}

double FeatureVector::alpha_cycles() const {
  REPRO_ENSURE(fit_frequency > 0.0,
               "alpha_cycles needs a recorded fit frequency");
  return alpha * fit_frequency;
}

double FeatureVector::beta_cycles() const {
  REPRO_ENSURE(fit_frequency > 0.0,
               "beta_cycles needs a recorded fit frequency");
  return beta * fit_frequency;
}

FeatureVector FeatureVector::at_frequency(Hertz hz) const {
  REPRO_ENSURE(hz > 0.0, "target frequency must be positive");
  if (hz == fit_frequency) return *this;  // exact: no scale, no drift
  REPRO_ENSURE(fit_frequency > 0.0,
               "cannot rescale a feature vector of unknown fit frequency");
  FeatureVector out = *this;
  const double scale = fit_frequency / hz;
  out.alpha = alpha * scale;
  out.beta = beta * scale;
  out.fit_frequency = hz;
  return out;
}

EquilibriumSolver::EquilibriumSolver(std::uint32_t ways,
                                     EquilibriumOptions options)
    : ways_(ways), options_(options) {
  REPRO_ENSURE(ways_ > 0, "cache needs ways");
  REPRO_ENSURE(options_.min_ways > 0.0 &&
                   options_.min_ways < static_cast<double>(ways_),
               "bad min_ways");
}

std::vector<math::PiecewiseLinear> EquilibriumSolver::fill_curves(
    const std::vector<FeatureVector>& processes) const {
  std::vector<math::PiecewiseLinear> curves;
  curves.reserve(processes.size());
  for (const FeatureVector& fv : processes)
    curves.push_back(fill_curve(fv.histogram, ways_, options_.mpa_floor));
  return curves;
}

ProcessPrediction EquilibriumSolver::predict_at(const FeatureVector& fv,
                                                Ways s) const {
  ProcessPrediction p;
  p.effective_size = std::clamp(s, 0.0, static_cast<double>(ways_));
  p.mpa = fv.histogram.mpa(p.effective_size);
  p.spi = fv.spi_at(p.mpa);
  REPRO_ENSURE(p.spi > 0.0, "non-positive predicted SPI");
  p.aps = fv.api / p.spi;
  return p;
}

std::vector<ProcessPrediction> EquilibriumSolver::solve(
    const std::vector<FeatureVector>& processes,
    const SolveOptions& options) const {
  const std::size_t k = processes.size();
  REPRO_ENSURE(k >= 1, "need at least one process");
  std::vector<double> unit_shares;
  const std::vector<double>* share_ptr = &options.cpu_share;
  if (options.cpu_share.empty()) {
    unit_shares.assign(k, 1.0);
    share_ptr = &unit_shares;
  }
  const std::vector<double>& cpu_share = *share_ptr;
  REPRO_ENSURE(cpu_share.size() == k, "one share per process");
  for (double w : cpu_share)
    REPRO_ENSURE(w > 0.0 && w <= 1.0, "shares must be in (0, 1]");
  for (const FeatureVector& fv : processes) fv.validate();
  if (!options.fill.empty())
    REPRO_ENSURE(options.fill.size() == k, "one fill curve per process");
  std::span<const double> warm_start = options.warm_start;
  if (!warm_start.empty()) {
    REPRO_ENSURE(warm_start.size() == k, "one warm-start seed per process");
    // A non-finite seed would poison the τ bracket / Newton start
    // (clamp(NaN) is NaN); a warm start is only ever an optimization,
    // so degrade to a cold solve instead of failing the query.
    for (double s : warm_start)
      if (!std::isfinite(s)) {
        warm_start = {};
        break;
      }
  }
  if (options.stats != nullptr) *options.stats = SolveStats{};

  if (k == 1) return {predict_at(processes[0], static_cast<double>(ways_))};

  // Materialize curves only when the caller did not memoize them.
  std::vector<math::PiecewiseLinear> own_fill;
  std::vector<const math::PiecewiseLinear*> own_ptrs;
  std::span<const math::PiecewiseLinear* const> fill = options.fill;
  if (fill.empty()) {
    own_fill = fill_curves(processes);
    own_ptrs.reserve(k);
    for (const math::PiecewiseLinear& curve : own_fill)
      own_ptrs.push_back(&curve);
    fill = own_ptrs;
  }

  return options.method == SolveOptions::Method::kNewton
             ? solve_newton_impl(processes, cpu_share, fill, warm_start,
                                 options.stats)
             : solve_bisection(processes, cpu_share, fill, warm_start,
                               options.stats);
}

std::vector<ProcessPrediction> EquilibriumSolver::solve_bisection(
    const std::vector<FeatureVector>& processes,
    const std::vector<double>& cpu_share,
    std::span<const math::PiecewiseLinear* const> fill,
    std::span<const double> warm_start, SolveStats* stats) const {
  const std::size_t k = processes.size();
  const double a = static_cast<double>(ways_);
  REPRO_ENSURE(options_.min_ways * static_cast<double>(k) < a,
               "too many processes for the associativity");

  // Share-weighted APS_i at effective size S (Eq. 6 right-hand side):
  // a time-shared process issues accesses only while scheduled, so its
  // fill rate over wall time scales by its CPU share.
  auto aps_at = [&](std::size_t i, double s) {
    const Mpa mpa = processes[i].histogram.mpa(s);
    return cpu_share[i] * processes[i].api / processes[i].spi_at(mpa);
  };

  // S_i(τ): the unique bracketed root of g_i(S) = APS_i(S)·τ in
  // [min_ways, A], saturating at either end.
  auto size_at = [&](std::size_t i, double tau) {
    auto h = [&](double s) { return (*fill[i])(s) - tau * aps_at(i, s); };
    const double lo = options_.min_ways;
    if (h(lo) >= 0.0) return lo;   // even the floor fills slower than τ
    if (h(a) <= 0.0) return a;     // still filling at full associativity
    return math::solve_bracketed(h, lo, a, 1e-10);
  };

  auto excess = [&](double tau) {
    double sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) sum += size_at(i, tau);
    return sum - a;
  };

  // Bracket the horizon τ: excess(0) = k·min − A < 0; for large τ all
  // processes saturate and excess → (k−1)·A > 0. A warm start implies
  // a horizon estimate τ̂ = mean_i G_i⁻¹(Ŝ_i)/APS_i(Ŝ_i); seeding the
  // bracket there skips the geometric search from 1 ns.
  int iterations = 0;
  double tau_lo = 0.0;
  double tau_hi = 1e-9;
  if (!warm_start.empty()) {
    double tau_sum = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const double s = std::clamp(warm_start[i], options_.min_ways, a);
      tau_sum += (*fill[i])(s) / std::max(aps_at(i, s), 1e-300);
    }
    tau_hi = std::max(tau_sum / static_cast<double>(k), 1e-12);
  }
  int guard = 0;
  while (excess(tau_hi) < 0.0) {
    tau_lo = tau_hi;
    tau_hi *= 4.0;
    ++iterations;
    REPRO_ENSURE(++guard < 200, "equilibrium horizon failed to bracket");
  }
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (tau_lo + tau_hi);
    if (excess(mid) < 0.0)
      tau_lo = mid;
    else
      tau_hi = mid;
    ++iterations;
    if (std::fabs(excess(0.5 * (tau_lo + tau_hi))) < options_.tolerance)
      break;
  }
  const double tau = 0.5 * (tau_lo + tau_hi);
  if (stats != nullptr) stats->iterations = iterations;

  // Renormalize the solution onto the Σ S_i = A simplex (the bisection
  // leaves a residual below tolerance; scaling keeps Eq. 1 exact).
  std::vector<double> sizes(k);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    sizes[i] = size_at(i, tau);
    total += sizes[i];
  }
  REPRO_ENSURE(total > 0.0, "degenerate equilibrium");
  std::vector<ProcessPrediction> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    out.push_back(predict_at(processes[i], sizes[i] * a / total));
  return out;
}

std::vector<ProcessPrediction> EquilibriumSolver::solve_newton_impl(
    const std::vector<FeatureVector>& processes,
    const std::vector<double>& cpu_share,
    std::span<const math::PiecewiseLinear* const> fill,
    std::span<const double> warm_start, SolveStats* stats) const {
  const std::size_t k = processes.size();
  const double a = static_cast<double>(ways_);

  auto spi_at_size = [&](std::size_t i, double s) {
    return processes[i].spi_at(processes[i].histogram.mpa(s));
  };

  // Unknowns: S_1..S_k. Equation 0 is Eq. 1 (normalized by A); for
  // i >= 1, Eq. 7 in cross-multiplied, relative form. CPU shares scale
  // each process's access rate, so API enters as cpu_share·API.
  auto residuals = [&](const std::vector<double>& s) {
    std::vector<double> f(k);
    double sum = 0.0;
    for (double v : s) sum += v;
    f[0] = (sum - a) / a;
    for (std::size_t i = 1; i < k; ++i) {
      const double lhs = (*fill[0])(s[0]) * cpu_share[i] * processes[i].api *
                         spi_at_size(0, s[0]);
      const double rhs = (*fill[i])(s[i]) * cpu_share[0] * processes[0].api *
                         spi_at_size(i, s[i]);
      const double scale = 0.5 * (std::fabs(lhs) + std::fabs(rhs)) + 1e-300;
      f[i] = (lhs - rhs) / scale;
    }
    return f;
  };

  const double floor = std::max(options_.min_ways, 0.05);
  auto project = [&](std::vector<double>& s) {
    for (double& v : s) v = std::clamp(v, floor, a);
  };

  // Seed from the previous equilibrium when the caller has one: after
  // a small profile delta the old steady state is inside Newton's
  // quadratic-convergence basin, so the re-solve lands in 1–2 damped
  // steps instead of marching in from the uniform A/k split.
  std::vector<double> start(k, a / static_cast<double>(k));
  if (!warm_start.empty()) {
    start.assign(warm_start.begin(), warm_start.end());
    project(start);
  }
  math::NewtonOptions opt;
  opt.f_tol = 1e-8;
  opt.max_iter = 200;
  math::NewtonResult res =
      math::newton_raphson(residuals, start, project, opt);
  if (!res.converged && !warm_start.empty()) {
    // A warm start is only ever an optimization; a seed far from the
    // fixed point (e.g. projected in from outside [0, A]) must not turn
    // a solvable instance into a failure. Retry cold.
    const int warm_iterations = res.iterations;
    start.assign(k, a / static_cast<double>(k));
    res = math::newton_raphson(residuals, start, project, opt);
    res.iterations += warm_iterations;
  }
  REPRO_ENSURE(res.converged, "Newton equilibrium failed to converge");
  if (stats != nullptr) stats->iterations = res.iterations;

  std::vector<ProcessPrediction> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i)
    out.push_back(predict_at(processes[i], res.x[i]));
  return out;
}

}  // namespace repro::core
