#include "repro/core/fill_model.hpp"

#include <algorithm>

#include "repro/common/ensure.hpp"

namespace repro::core {

FillMarkovChain::FillMarkovChain(const ReuseHistogram& hist,
                                 std::uint32_t max_ways) {
  REPRO_ENSURE(max_ways > 0, "need at least one way");
  mpa_at_.resize(max_ways + 1);
  for (std::uint32_t i = 0; i <= max_ways; ++i)
    mpa_at_[i] = hist.mpa(static_cast<Ways>(i));
  // The chain must not grow past the associativity: with a full set,
  // a miss replaces a line rather than adding one.
  mpa_at_[max_ways] = 0.0;
  p_.assign(max_ways + 1, 0.0);
  p_[0] = 1.0;
}

void FillMarkovChain::step() {
  // Eq. 4: P_{i,n} = P_{i,n−1}·(1 − MPA(i)) + P_{i−1,n−1}·MPA(i−1).
  // Traverse downward so P_{i−1,n−1} is still the old value.
  for (std::size_t i = p_.size(); i-- > 1;)
    p_[i] = p_[i] * (1.0 - mpa_at_[i]) + p_[i - 1] * mpa_at_[i - 1];
  p_[0] *= 1.0 - mpa_at_[0];
  ++n_;
}

void FillMarkovChain::run(std::uint64_t n) {
  for (std::uint64_t k = 0; k < n; ++k) step();
}

Ways FillMarkovChain::expected_occupancy() const {
  double g = 0.0;
  for (std::size_t i = 1; i < p_.size(); ++i)
    g += static_cast<double>(i) * p_[i];
  return g;
}

math::PiecewiseLinear fill_curve(const ReuseHistogram& hist,
                                 std::uint32_t max_ways, double mpa_floor,
                                 std::uint32_t steps_per_way) {
  REPRO_ENSURE(max_ways > 0 && steps_per_way > 0, "bad fill_curve args");
  REPRO_ENSURE(mpa_floor > 0.0, "mpa_floor must be positive");

  // n(S) = ∫₀^S dx / MPA(x), accumulated with the midpoint rule on a
  // uniform grid; knots are kept at every grid point so the inverse
  // map is equally accurate anywhere in [0, max_ways].
  const std::size_t n_steps =
      static_cast<std::size_t>(max_ways) * steps_per_way;
  const double dx = static_cast<double>(max_ways) / n_steps;
  std::vector<double> xs(n_steps + 1);
  std::vector<double> ys(n_steps + 1);
  xs[0] = 0.0;
  ys[0] = 0.0;
  double acc = 0.0;
  for (std::size_t k = 0; k < n_steps; ++k) {
    const double mid = (static_cast<double>(k) + 0.5) * dx;
    acc += dx / std::max(hist.mpa(mid), mpa_floor);
    xs[k + 1] = static_cast<double>(k + 1) * dx;
    ys[k + 1] = acc;
  }
  return math::PiecewiseLinear(std::move(xs), std::move(ys));
}

}  // namespace repro::core
