#include "repro/core/profiler.hpp"

#include <algorithm>

#include "repro/common/ensure.hpp"
#include "repro/math/stats.hpp"
#include "repro/sim/system.hpp"
#include "repro/workload/generator.hpp"
#include "repro/workload/stressmark.hpp"

namespace repro::core {

StressmarkProfiler::StressmarkProfiler(const sim::MachineConfig& machine,
                                       const power::OracleConfig& oracle,
                                       ProfilerOptions options)
    : machine_(machine), oracle_(oracle), options_(options) {
  machine_.validate();
  REPRO_ENSURE(options_.target_core < machine_.cores, "bad target core");
  const std::vector<CoreId> partners =
      machine_.partner_set(options_.target_core);
  REPRO_ENSURE(!partners.empty(),
               "profiling needs a core sharing the target's cache");
  stress_core_ = partners.front();
  REPRO_ENSURE(options_.warmup >= 0.0 && options_.measure > 0.0,
               "bad profiling durations");
}

ProcessProfile StressmarkProfiler::profile(
    const workload::WorkloadSpec& spec) const {
  spec.validate();
  const std::uint32_t a = machine_.l2.ways;
  const std::uint32_t sets = machine_.l2.sets;

  ProcessProfile profile;
  profile.name = spec.name;
  profile.mpa_at_ways.assign(a, 0.0);
  profile.spi_at_ways.assign(a, 0.0);

  // --- Stand-alone run: PF vector, P_alone, and the S = A point. ---
  {
    sim::SystemConfig cfg;
    cfg.machine = machine_;
    sim::System system(cfg, oracle_, options_.seed);
    system.add_process(spec.name, options_.target_core, spec.mix,
                       std::make_unique<workload::StackDistanceGenerator>(
                           spec, sets));
    system.warm_up(options_.warmup);
    const sim::RunResult run = system.run(options_.measure);
    const sim::ProcessReport& report = run.process(0);
    profile.alone = report.per_instruction();
    profile.power_alone = run.mean_measured_power();
    profile.mpa_at_ways[a - 1] = report.mpa();
    profile.spi_at_ways[a - 1] = report.spi();
  }

  // --- Stressmark sweep: W = 1..A−1 pins S ≈ A − W. ---
  // A finite-speed stressmark does not hold exactly W ways against an
  // aggressive co-runner: the target evicts some of its lines between
  // revisits. The paper handles this by "tuning S_stress to control
  // S_B"; our equivalent correction uses the stressmark's *own*
  // observable miss ratio. The stressmark revisits each of its lines
  // every W accesses to a set; if a revisit misses with probability p
  // (its measured MPA), the line was absent for on average half the
  // revisit interval, so its true occupancy is ≈ W·(1 − p/2) ways and
  // the target's effective size is A minus that.
  std::vector<double> s_points{static_cast<double>(a)};
  std::vector<double> mpa_points{profile.mpa_at_ways[a - 1]};
  std::vector<double> spi_points{profile.spi_at_ways[a - 1]};
  for (std::uint32_t w = 1; w < a; ++w) {
    sim::SystemConfig cfg;
    cfg.machine = machine_;
    sim::System system(cfg, oracle_, options_.seed + w);
    const ProcessId target = system.add_process(
        spec.name, options_.target_core, spec.mix,
        std::make_unique<workload::StackDistanceGenerator>(spec, sets));
    const workload::WorkloadSpec stress = workload::make_stressmark_spec(w);
    const ProcessId stress_pid = system.add_process(
        stress.name, stress_core_, stress.mix,
        workload::make_stressmark(w, sets));
    system.warm_up(options_.warmup);
    const sim::RunResult run = system.run(options_.measure);
    const sim::ProcessReport& report = run.process(target);
    const double stress_mpa = run.process(stress_pid).mpa();
    const double stress_ways =
        static_cast<double>(w) * (1.0 - 0.5 * stress_mpa);
    s_points.push_back(static_cast<double>(a) - stress_ways);
    mpa_points.push_back(report.mpa());
    spi_points.push_back(report.spi());
  }

  // Resample the (S, MPA) cloud onto the integer grid 1..A.
  {
    profile.mpa_at_ways = resample_mpa_curve(s_points, mpa_points, a);
    const math::LineFit spi_on_mpa = math::fit_line(mpa_points, spi_points);
    for (std::uint32_t s = 1; s <= a; ++s)
      profile.spi_at_ways[s - 1] =
          spi_on_mpa.slope * profile.mpa_at_ways[s - 1] +
          spi_on_mpa.intercept;
  }

  // --- Feature vector: Eq. 8 histogram + Eq. 3 regression. ---
  profile.features.name = spec.name;
  profile.features.histogram =
      ReuseHistogram::from_mpa_curve(profile.mpa_at_ways);
  profile.features.api = profile.alone.l2rpi;
  const math::LineFit fit = math::fit_line(mpa_points, spi_points);
  profile.features.alpha = fit.slope;
  profile.features.beta = fit.intercept;
  // Measurement noise on a nearly-flat MPA curve can produce a
  // (slightly) non-physical fit — SPI must not decrease with MPA; fall
  // back to the stand-alone operating point with the timing-model
  // slope sign convention. Keeping alpha >= 0 also matches what the
  // store format accepts back on load.
  if (profile.features.beta <= 0.0 || profile.features.alpha < 0.0) {
    profile.features.alpha = 0.0;
    profile.features.beta = profile.alone.spi;
  }
  // α/β were measured on the target core at its configured clock; a
  // consumer on a different clock must rescale (FeatureVector::
  // at_frequency), and the engine's apply gate refuses profiles whose
  // clock the machine cannot run at.
  profile.features.fit_frequency = machine_.frequency_of(options_.target_core);
  profile.features.validate();
  return profile;
}

std::vector<ProcessProfile> StressmarkProfiler::profile_all(
    const std::vector<workload::WorkloadSpec>& specs) const {
  std::vector<ProcessProfile> out;
  out.reserve(specs.size());
  for (const workload::WorkloadSpec& spec : specs)
    out.push_back(profile(spec));
  return out;
}

}  // namespace repro::core
