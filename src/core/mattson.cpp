#include "repro/core/mattson.hpp"

#include <algorithm>

#include "repro/common/ensure.hpp"

namespace repro::core {

namespace {

MattsonResult run_mattson(std::span<const sim::MemoryAccess> trace,
                          std::uint32_t sets, std::uint32_t max_depth,
                          std::uint32_t sample_period) {
  REPRO_ENSURE(sets > 0 && max_depth > 0 && sample_period > 0,
               "bad mattson arguments");

  // Per-set LRU stacks, capped: any line deeper than max_depth would
  // only ever contribute to the tail, so it can be dropped.
  const std::uint32_t cap = max_depth + 1;
  std::vector<std::vector<std::uint64_t>> stacks(sets);
  std::vector<double> counts(max_depth, 0.0);
  double tail = 0.0;
  std::uint64_t cold = 0;
  std::uint64_t sampled = 0;

  std::uint64_t index = 0;
  for (const sim::MemoryAccess& access : trace) {
    REPRO_ENSURE(access.set < sets, "trace access outside set range");
    std::vector<std::uint64_t>& stack = stacks[access.set];
    const bool counted = (index++ % sample_period) == 0;

    const auto it = std::find(stack.begin(), stack.end(), access.line);
    if (it == stack.end()) {
      if (counted) {
        ++cold;
        tail += 1.0;  // infinite distance: misses at every size
        ++sampled;
      }
      stack.insert(stack.begin(), access.line);
      if (stack.size() > cap) stack.pop_back();
      continue;
    }
    const std::uint32_t distance =
        static_cast<std::uint32_t>(it - stack.begin()) + 1;
    stack.erase(it);
    stack.insert(stack.begin(), access.line);
    if (!counted) continue;
    ++sampled;
    if (distance <= max_depth)
      counts[distance - 1] += 1.0;
    else
      tail += 1.0;
  }

  MattsonResult result;
  result.accesses = trace.size();
  result.cold_accesses = cold;
  REPRO_ENSURE(sampled > 0, "trace too short for the sampling period");
  const double total = static_cast<double>(sampled);
  for (double& c : counts) c /= total;
  result.histogram = ReuseHistogram(std::move(counts), tail / total);
  return result;
}

}  // namespace

MattsonResult mattson_histogram(std::span<const sim::MemoryAccess> trace,
                                std::uint32_t sets,
                                std::uint32_t max_depth) {
  return run_mattson(trace, sets, max_depth, 1);
}

MattsonResult mattson_histogram_sampled(
    std::span<const sim::MemoryAccess> trace, std::uint32_t sets,
    std::uint32_t max_depth, std::uint32_t sample_period) {
  return run_mattson(trace, sets, max_depth, sample_period);
}

}  // namespace repro::core
