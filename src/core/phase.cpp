#include "repro/core/phase.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::core {

namespace {

double segment_mean(std::span<const double> series, std::size_t begin,
                    std::size_t end) {
  double sum = 0.0;
  for (std::size_t i = begin; i < end; ++i) sum += series[i];
  return sum / static_cast<double>(end - begin);
}

}  // namespace

std::vector<Phase> PhaseDetector::detect(
    std::span<const double> series) const {
  if (series.empty()) return {};
  const std::size_t n = series.size();
  if (n < options_.min_phase_windows) {
    // Too little data to claim any significant phase change: the whole
    // series is one phase (merging would converge here anyway, but the
    // contract should not depend on the merge loop's path).
    Phase whole;
    whole.begin = 0;
    whole.end = n;
    whole.mean = segment_mean(series, 0, n);
    return {whole};
  }

  // Pass 0: moving-average smoothing.
  std::vector<double> smooth(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo =
        i >= options_.smooth_radius ? i - options_.smooth_radius : 0;
    const std::size_t hi = std::min(n, i + options_.smooth_radius + 1);
    smooth[i] = segment_mean(series, lo, hi);
  }

  // Pass 1: change-point marking — a boundary wherever the smoothed
  // value jumps relative to the running mean of the current segment.
  std::vector<std::size_t> boundaries{0};
  double run_sum = smooth[0];
  std::size_t run_len = 1;
  for (std::size_t i = 1; i < n; ++i) {
    const double run_mean = run_sum / static_cast<double>(run_len);
    const double jump = std::fabs(smooth[i] - run_mean);
    const double threshold = std::max(
        options_.absolute_threshold,
        options_.relative_threshold * std::fabs(run_mean));
    if (jump > threshold) {
      boundaries.push_back(i);
      run_sum = smooth[i];
      run_len = 1;
    } else {
      run_sum += smooth[i];
      ++run_len;
    }
  }
  boundaries.push_back(n);

  // Pass 2: build segments; merge short ones into the more similar
  // neighbour; merge adjacent segments whose means are within the
  // threshold of each other.
  std::vector<Phase> phases;
  for (std::size_t b = 0; b + 1 < boundaries.size(); ++b) {
    Phase p;
    p.begin = boundaries[b];
    p.end = boundaries[b + 1];
    p.mean = segment_mean(series, p.begin, p.end);
    phases.push_back(p);
  }

  auto merge_at = [&](std::size_t i) {
    // Merge phases[i] and phases[i+1].
    Phase merged;
    merged.begin = phases[i].begin;
    merged.end = phases[i + 1].end;
    merged.mean = segment_mean(series, merged.begin, merged.end);
    phases[i] = merged;
    phases.erase(phases.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  };

  bool changed = true;
  while (changed && phases.size() > 1) {
    changed = false;
    // Merge statistically indistinguishable neighbours.
    for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
      const double scale =
          std::max({std::fabs(phases[i].mean), std::fabs(phases[i + 1].mean),
                    options_.absolute_threshold});
      if (std::fabs(phases[i].mean - phases[i + 1].mean) <=
          options_.relative_threshold * scale) {
        merge_at(i);
        changed = true;
        break;
      }
    }
    if (changed) continue;
    // Merge too-short segments into the closer-mean neighbour.
    for (std::size_t i = 0; i < phases.size(); ++i) {
      if (phases[i].length() >= options_.min_phase_windows) continue;
      if (phases.size() == 1) break;
      if (i == 0) {
        merge_at(0);
      } else if (i + 1 == phases.size()) {
        merge_at(i - 1);
      } else {
        const double d_prev = std::fabs(phases[i].mean - phases[i - 1].mean);
        const double d_next = std::fabs(phases[i].mean - phases[i + 1].mean);
        merge_at(d_prev <= d_next ? i - 1 : i);
      }
      changed = true;
      break;
    }
  }
  return phases;
}

const Phase& PhaseDetector::dominant(const std::vector<Phase>& phases) {
  REPRO_ENSURE(!phases.empty(), "no phases");
  const Phase* best = &phases[0];
  for (const Phase& p : phases)
    if (p.length() > best->length()) best = &p;
  return *best;
}

}  // namespace repro::core
