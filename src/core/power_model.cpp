#include "repro/core/power_model.hpp"

#include <memory>

#include "repro/common/ensure.hpp"
#include "repro/sim/system.hpp"
#include "repro/workload/generator.hpp"
#include "repro/workload/microbench.hpp"

namespace repro::core {

namespace {

/// Append every sample of a run as (total rates across cores, measured
/// power) to the training set under construction.
void append_samples(const sim::RunResult& run, std::vector<double>* rows,
                    std::vector<double>* power) {
  for (const sim::Sample& s : run.samples) {
    hpc::EventRates total;
    for (const hpc::EventRates& r : s.core_rates) total += r;
    const std::array<double, 5> reg = total.regressors();
    rows->insert(rows->end(), reg.begin(), reg.end());
    power->push_back(s.measured_power);
  }
}

/// Run N instances of one workload (one per core) and harvest samples.
void harvest_workload(const sim::MachineConfig& machine,
                      const power::OracleConfig& oracle,
                      const workload::WorkloadSpec& spec, Seconds warmup,
                      Seconds measure, std::uint64_t seed,
                      std::vector<double>* rows, std::vector<double>* power) {
  sim::SystemConfig cfg;
  cfg.machine = machine;
  sim::System system(cfg, oracle, seed);
  for (CoreId c = 0; c < machine.cores; ++c)
    system.add_process(spec.name, c, spec.mix,
                       std::make_unique<workload::StackDistanceGenerator>(
                           spec, machine.l2.sets));
  system.warm_up(warmup);
  append_samples(system.run(measure), rows, power);
}

}  // namespace

PowerModel::PowerModel(Watts idle_total, std::array<double, 5> coefficients,
                       std::uint32_t cores)
    : idle_total_(idle_total), c_(coefficients), cores_(cores) {
  REPRO_ENSURE(cores_ > 0, "power model needs cores");
  REPRO_ENSURE(idle_total_ > 0.0, "idle power must be positive");
}

PowerModel PowerModel::fit(const PowerTrainingSet& data,
                           std::uint32_t cores) {
  REPRO_ENSURE(data.regressors.cols() == 5, "expected 5 regressors");
  const math::Mvlr::Fit f = math::Mvlr::fit(data.regressors, data.power);
  std::array<double, 5> c{};
  for (std::size_t j = 0; j < 5; ++j) c[j] = f.coefficients[j];
  return PowerModel(f.intercept, c, cores);
}

PowerTrainingSet PowerModel::collect(
    const sim::MachineConfig& machine, const power::OracleConfig& oracle,
    const std::vector<std::string>& training_workloads,
    const PowerTrainerOptions& options) {
  machine.validate();
  std::vector<double> rows;
  std::vector<double> power;
  std::uint64_t seed = options.seed;

  // Idle phase (the micro-benchmark's phase 0).
  {
    sim::SystemConfig cfg;
    cfg.machine = machine;
    sim::System system(cfg, oracle, seed++);
    append_samples(system.run(options.run_idle), &rows, &power);
  }

  // SPEC-like training workloads, N instances each.
  for (const std::string& name : training_workloads)
    harvest_workload(machine, oracle, workload::find_spec(name),
                     options.warmup, options.run_per_workload, seed++, &rows,
                     &power);

  // Micro-benchmark phases 1–5 at 8 levels each.
  for (const workload::WorkloadSpec& cell : workload::microbench_all_phases())
    harvest_workload(machine, oracle, cell, options.warmup,
                     options.run_per_microbench, seed++, &rows, &power);

  PowerTrainingSet set;
  const std::size_t n = power.size();
  set.regressors = math::Matrix(n, 5);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < 5; ++c)
      set.regressors(r, c) = rows[r * 5 + c];
  set.power = std::move(power);
  return set;
}

PowerModel PowerModel::train(
    const sim::MachineConfig& machine, const power::OracleConfig& oracle,
    const std::vector<std::string>& training_workloads,
    const PowerTrainerOptions& options) {
  return fit(collect(machine, oracle, training_workloads, options),
             machine.cores);
}

Watts PowerModel::predict(
    std::span<const hpc::EventRates> per_core_rates) const {
  Watts p = idle_total_;
  for (const hpc::EventRates& r : per_core_rates) p += dynamic_power(r);
  return p;
}

Watts PowerModel::dynamic_power(const hpc::EventRates& rates) const {
  const std::array<double, 5> reg = rates.regressors();
  double p = 0.0;
  for (std::size_t j = 0; j < 5; ++j) p += c_[j] * reg[j];
  return p;
}

Watts time_shared_core_power(std::span<const Watts> process_powers) {
  REPRO_ENSURE(!process_powers.empty(), "no processes on core");
  double sum = 0.0;
  for (Watts p : process_powers) sum += p;
  return sum / static_cast<double>(process_powers.size());
}

Watts core_set_power(std::span<const Watts> combination_powers) {
  REPRO_ENSURE(!combination_powers.empty(), "no combinations");
  double sum = 0.0;
  for (Watts p : combination_powers) sum += p;
  return sum / static_cast<double>(combination_powers.size());
}

}  // namespace repro::core
