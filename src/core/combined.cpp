#include "repro/core/combined.hpp"

#include <algorithm>

#include "repro/common/ensure.hpp"

namespace repro::core {

std::size_t Assignment::process_count() const {
  std::size_t n = 0;
  for (const auto& q : per_core) n += q.size();
  return n;
}

void Assignment::validate(std::uint32_t cores,
                          std::size_t profile_count) const {
  REPRO_ENSURE(per_core.size() == cores, "assignment core count mismatch");
  for (const auto& q : per_core)
    for (std::size_t idx : q)
      REPRO_ENSURE(idx < profile_count, "profile index out of range");
}

CombinedEstimator::CombinedEstimator(PowerModel model,
                                     sim::MachineConfig machine,
                                     EquilibriumOptions equilibrium,
                                     EstimatorMode mode)
    : model_(std::move(model)),
      machine_(std::move(machine)),
      solver_(machine_.l2.ways, equilibrium),
      mode_(mode) {
  machine_.validate();
  REPRO_ENSURE(model_.cores() == machine_.cores,
               "power model trained for a different core count");
}

Watts process_dynamic_power(const PowerModel& model,
                            const hpc::PerInstructionRates& pf, Spi spi,
                            Mpa l2mpr) {
  REPRO_ENSURE(spi > 0.0, "SPI must be positive");
  const std::array<double, 5>& c = model.coefficients();
  // §5: P1 covers the contention-invariant events; P2 the L2 misses.
  const double p1 =
      (c[0] * pf.l1rpi + c[1] * pf.l2rpi + c[3] * pf.brpi + c[4] * pf.fppi) /
      spi;
  const double p2 = c[2] * pf.l2rpi * l2mpr / spi;
  return p1 + p2;
}

Watts CombinedEstimator::process_dynamic_power(const ProcessProfile& profile,
                                               Spi spi, Mpa l2mpr) const {
  return core::process_dynamic_power(model_, profile.alone, spi, l2mpr);
}

CombinedEstimator::ComboEstimate CombinedEstimator::combination_estimate(
    std::span<const ProcessProfile* const> combo) const {
  REPRO_ENSURE(!combo.empty(), "empty combination");
  std::vector<FeatureVector> features;
  features.reserve(combo.size());
  for (const ProcessProfile* p : combo) features.push_back(p->features);
  const std::vector<ProcessPrediction> eq = solver_.solve(features);
  ComboEstimate out;
  for (std::size_t i = 0; i < combo.size(); ++i) {
    out.dynamic += process_dynamic_power(*combo[i], eq[i].spi, eq[i].mpa);
    out.ips += 1.0 / eq[i].spi;
  }
  return out;
}

CombinedEstimator::ComboEstimate CombinedEstimator::die_estimate(
    std::span<const ProcessProfile> profiles, const Assignment& assignment,
    DieId die) const {
  // Busy cores on this die and their run queues.
  std::vector<const std::vector<std::size_t>*> queues;
  for (CoreId c : machine_.cores_on_die(die))
    if (!assignment.per_core[c].empty())
      queues.push_back(&assignment.per_core[c]);
  if (queues.empty()) return {};

  // Enumerate the cartesian product of run queues: each element is one
  // process combination (the set running concurrently during one
  // timeslice alignment). Equal timeslices make all combinations
  // equally weighted (Eq. 10).
  std::vector<std::size_t> cursor(queues.size(), 0);
  ComboEstimate sum;
  std::size_t count = 0;
  while (true) {
    std::vector<const ProcessProfile*> combo;
    combo.reserve(queues.size());
    for (std::size_t q = 0; q < queues.size(); ++q)
      combo.push_back(&profiles[(*queues[q])[cursor[q]]]);
    const ComboEstimate one = combination_estimate(combo);
    sum.dynamic += one.dynamic;
    sum.ips += one.ips;
    ++count;

    std::size_t q = 0;
    while (q < queues.size() && ++cursor[q] == queues[q]->size()) {
      cursor[q] = 0;
      ++q;
    }
    if (q == queues.size()) break;
  }
  sum.dynamic /= static_cast<double>(count);
  sum.ips /= static_cast<double>(count);
  return sum;
}

Watts CombinedEstimator::estimate(std::span<const ProcessProfile> profiles,
                                  const Assignment& assignment) const {
  return estimate_detailed(profiles, assignment).power;
}

CombinedEstimator::ComboEstimate CombinedEstimator::die_estimate_die_wide(
    std::span<const ProcessProfile> profiles, const Assignment& assignment,
    DieId die) const {
  // All processes of the die contend at once; a process on a core with
  // q runnable processes fills the cache with CPU share 1/q.
  std::vector<FeatureVector> features;
  std::vector<double> shares;
  for (CoreId c : machine_.cores_on_die(die)) {
    const std::size_t q = assignment.per_core[c].size();
    for (std::size_t idx : assignment.per_core[c]) {
      features.push_back(profiles[idx].features);
      shares.push_back(1.0 / static_cast<double>(q));
    }
  }
  if (features.empty()) return {};

  SolveOptions solve_options;
  solve_options.cpu_share = std::move(shares);
  const std::vector<ProcessPrediction> eq =
      solver_.solve(features, solve_options);

  ComboEstimate out;
  std::size_t cursor = 0;
  for (CoreId c : machine_.cores_on_die(die)) {
    const std::size_t q = assignment.per_core[c].size();
    if (q == 0) continue;
    // Core power/throughput: time average over the run queue.
    double dyn = 0.0;
    double ips = 0.0;
    for (std::size_t slot = 0; slot < q; ++slot, ++cursor) {
      const std::size_t idx = assignment.per_core[c][slot];
      dyn += process_dynamic_power(profiles[idx], eq[cursor].spi,
                                   eq[cursor].mpa);
      ips += 1.0 / eq[cursor].spi;
    }
    out.dynamic += dyn / static_cast<double>(q);
    out.ips += ips / static_cast<double>(q);
  }
  return out;
}

CombinedEstimator::Detailed CombinedEstimator::estimate_detailed(
    std::span<const ProcessProfile> profiles,
    const Assignment& assignment) const {
  assignment.validate(machine_.cores, profiles.size());
  Detailed out;
  out.power = model_.idle_total();
  for (DieId d = 0; d < machine_.dies; ++d) {
    const ComboEstimate die =
        mode_ == EstimatorMode::kPaper
            ? die_estimate(profiles, assignment, d)
            : die_estimate_die_wide(profiles, assignment, d);
    out.power += die.dynamic;
    out.throughput_ips += die.ips;
  }
  return out;
}

Watts CombinedEstimator::estimate_after_assign(
    std::span<const ProcessProfile> profiles, const Assignment& current,
    std::size_t new_process, CoreId target_core,
    std::span<const Watts> current_core_power) const {
  current.validate(machine_.cores, profiles.size());
  REPRO_ENSURE(new_process < profiles.size(), "bad new process index");
  REPRO_ENSURE(target_core < machine_.cores, "bad target core");
  REPRO_ENSURE(current_core_power.size() == machine_.cores,
               "need one current power per core");

  const DieId die = machine_.core_to_die[target_core];
  const std::vector<CoreId> die_cores = machine_.cores_on_die(die);

  // Cores of the die after the tentative assignment.
  Assignment tentative = current;
  tentative.per_core[target_core].push_back(new_process);

  // Combination counts: |S_in| (include the new process) vs |S_ex|.
  // With the new process appended to core C's queue of length q_C,
  // |S_in| = Π_{other busy cores} |queue|, |S_ex| = q_C · |S_in| …
  // computed directly from the queues.
  std::size_t in_count = 1;
  std::size_t total_count = 1;
  for (CoreId c : die_cores) {
    const std::size_t q = tentative.per_core[c].size();
    if (q == 0) continue;
    total_count *= q;
    in_count *= (c == target_core) ? 1 : q;
  }
  const std::size_t ex_count = total_count - in_count;

  // P_in: average predicted dynamic power over combinations that
  // include the new process — enumerate with the new process pinned.
  double p_in_sum = 0.0;
  {
    std::vector<const std::vector<std::size_t>*> queues;
    std::vector<bool> pinned;
    for (CoreId c : die_cores) {
      if (tentative.per_core[c].empty()) continue;
      queues.push_back(&tentative.per_core[c]);
      pinned.push_back(c == target_core);
    }
    std::vector<std::size_t> cursor(queues.size(), 0);
    std::size_t counted = 0;
    while (true) {
      std::vector<const ProcessProfile*> combo;
      bool valid = true;
      for (std::size_t q = 0; q < queues.size(); ++q) {
        const std::size_t idx =
            pinned[q] ? queues[q]->back() : (*queues[q])[cursor[q]];
        if (pinned[q] && cursor[q] != 0) valid = false;
        combo.push_back(&profiles[idx]);
      }
      if (valid) {
        p_in_sum += combination_estimate(combo).dynamic;
        ++counted;
      }
      std::size_t q = 0;
      while (q < queues.size() && ++cursor[q] == queues[q]->size()) {
        cursor[q] = 0;
        ++q;
      }
      if (q == queues.size()) break;
    }
    REPRO_ENSURE(counted == in_count, "combination enumeration mismatch");
  }
  const double p_in = p_in_sum / static_cast<double>(in_count);

  // P_ex: current dynamic power of the die's busy cores (measured via
  // the model from live rates), idle-core terms handled below.
  double p_ex = 0.0;
  std::uint32_t busy = 0;
  for (CoreId c : die_cores) {
    if (current.per_core[c].empty() && c != target_core) continue;
    if (!current.per_core[c].empty()) {
      p_ex += current_core_power[c] - model_.idle_core();
      ++busy;
    }
  }
  (void)busy;

  // Eq. 11 assembled in dynamic-power space: the die contributes the
  // combination-weighted average; idle power enters once for the
  // package; other dies contribute their current dynamic power.
  const double die_dynamic =
      ex_count == 0
          ? p_in
          : (p_ex * static_cast<double>(ex_count) +
             p_in * static_cast<double>(in_count)) /
                static_cast<double>(total_count);

  double rest_dynamic = 0.0;
  for (CoreId c = 0; c < machine_.cores; ++c) {
    if (machine_.core_to_die[c] == die) continue;
    if (current.per_core[c].empty()) continue;
    rest_dynamic += current_core_power[c] - model_.idle_core();
  }
  return model_.idle_total() + die_dynamic + rest_dynamic;
}

}  // namespace repro::core
