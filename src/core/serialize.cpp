#include "repro/core/serialize.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "repro/common/crc32c.hpp"
#include "repro/common/durable_file.hpp"
#include "repro/common/ensure.hpp"

namespace repro::core {

namespace {

// Shortest round-trip rendering (std::to_chars): the value parses back
// bit-exactly, like the old max_digits10 iostream path, but an order
// of magnitude cheaper. Records build into a plain string and hit the
// stream once — this is the journal writer's per-event hot loop, where
// every profile revision renders three double vectors, and per-value
// ostream insertions (sentry + virtual streambuf each) would dominate
// the encode.
void append_double(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  REPRO_ENSURE(res.ec == std::errc(), "double rendering failed");
  out.append(buf, res.ptr);
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_doubles(std::string& out, const char* key,
                    std::span<const double> values) {
  out += key;
  for (double v : values) {
    out += ' ';
    append_double(out, v);
  }
  out += '\n';
}

std::vector<double> parse_doubles(std::istringstream& is,
                                  const std::string& context) {
  std::vector<double> out;
  double v;
  while (is >> v) out.push_back(v);
  REPRO_ENSURE(is.eof(), "trailing garbage in " + context);
  return out;
}

}  // namespace

void write_profile(std::ostream& os, const ProcessProfile& p) {
  std::string out;
  append_profile(out, p);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

void append_profile(std::string& out, const ProcessProfile& p) {
  REPRO_ENSURE(p.name.find_first_of(" \n") == std::string::npos,
               "profile names must not contain whitespace");
  out.reserve(out.size() + 512 +
              24 * (p.features.histogram.max_depth() + p.mpa_at_ways.size() +
                    p.spi_at_ways.size()));
  out += "profile v1 ";
  out += p.name;
  out += '\n';
  // Revision 0 (batch profiles) is the default, so seed-era stores
  // stay byte-identical and older readers never see the key.
  if (p.revision != 0) {
    out += "revision ";
    append_u64(out, p.revision);
    out += '\n';
  }
  // Optional like `revision`: the 0 sentinel (legacy profile, clock
  // unknown) is never written, so seed-era stores stay byte-identical
  // and legacy stores read back with fit_frequency 0.
  if (p.features.fit_frequency > 0.0) {
    out += "fit_frequency ";
    append_double(out, p.features.fit_frequency);
    out += '\n';
  }
  out += "api ";
  append_double(out, p.features.api);
  out += "\nalpha ";
  append_double(out, p.features.alpha);
  out += "\nbeta ";
  append_double(out, p.features.beta);
  out += "\npower_alone ";
  append_double(out, p.power_alone);
  out += "\nalone";
  for (double v : {p.alone.l1rpi, p.alone.l2rpi, p.alone.brpi, p.alone.fppi,
                   p.alone.l2mpr, p.alone.spi}) {
    out += ' ';
    append_double(out, v);
  }
  out += '\n';
  std::vector<double> hist{p.features.histogram.tail_mass()};
  for (std::uint32_t d = 1; d <= p.features.histogram.max_depth(); ++d)
    hist.push_back(p.features.histogram.probability(d));
  append_doubles(out, "hist", hist);
  append_doubles(out, "mpa_curve", p.mpa_at_ways);
  append_doubles(out, "spi_curve", p.spi_at_ways);
  out += "end\n";
}

void write_profiles(std::ostream& os,
                    const std::vector<ProcessProfile>& profiles) {
  for (const ProcessProfile& p : profiles) write_profile(os, p);
}

void write_power_model(std::ostream& os, const PowerModel& model) {
  std::string out;
  append_power_model(out, model);
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

void append_power_model(std::string& out, const PowerModel& model) {
  out.reserve(out.size() + 64 + 24 * model.coefficients().size());
  out += "power_model v1 ";
  append_u64(out, model.cores());
  out += ' ';
  append_double(out, model.idle_total());
  for (double c : model.coefficients()) {
    out += ' ';
    append_double(out, c);
  }
  out += '\n';
}

const ProcessProfile* ModelStore::find(const std::string& name) const {
  for (const ProcessProfile& p : profiles)
    if (p.name == name) return &p;
  return nullptr;
}

ModelStore read_store(std::istream& is) {
  ModelStore store;
  std::string line;
  std::optional<ProcessProfile> current;
  bool have_hist = false;
  std::size_t lineno = 0;

  // Every rejection names the offending line: a corrupted store (bit
  // rot, truncated copy, hand edit) should point at itself, not fail
  // later inside a fill-curve integral.
  auto fail = [&](const std::string& why) -> void {
    throw Error("store line " + std::to_string(lineno) + ": " + why);
  };
  auto require = [&](bool ok, const std::string& why) {
    if (!ok) fail(why);
  };
  auto require_open = [&](const std::string& key) {
    require(current.has_value(), "'" + key + "' outside a profile");
  };
  auto finite = [&](std::span<const double> values, const std::string& key) {
    for (double v : values)
      require(std::isfinite(v), key + " contains a non-finite value");
  };
  auto parse_list = [&](std::istringstream& ls, const std::string& key) {
    try {
      return parse_doubles(ls, key);
    } catch (const Error& e) {
      fail(e.what());
      return std::vector<double>{};  // unreachable; fail() throws
    }
  };

  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;

    if (key == "profile") {
      require(!current, "nested profile record");
      std::string version, name;
      ls >> version >> name;
      require(version == "v1" && !name.empty(),
              "bad profile header: " + line);
      current.emplace();
      current->name = name;
      current->features.name = name;
      have_hist = false;
    } else if (key == "revision") {
      require_open(key);
      std::uint64_t v = 0;
      require(static_cast<bool>(ls >> v), "bad value for revision");
      current->revision = v;
    } else if (key == "fit_frequency") {
      require_open(key);
      double v = 0.0;
      require(static_cast<bool>(ls >> v), "bad value for fit_frequency");
      require(std::isfinite(v) && v > 0.0,
              "fit_frequency must be positive and finite");
      current->features.fit_frequency = v;
    } else if (key == "api" || key == "alpha" || key == "beta" ||
               key == "power_alone") {
      require_open(key);
      double v;
      require(static_cast<bool>(ls >> v), "bad value for " + key);
      require(std::isfinite(v), key + " must be finite");
      if (key == "api") {
        require(v > 0.0, "api must be positive");
        current->features.api = v;
      } else if (key == "alpha") {
        require(v >= 0.0, "alpha must be nonnegative");
        current->features.alpha = v;
      } else if (key == "beta") {
        require(v > 0.0, "beta must be positive");
        current->features.beta = v;
      } else {
        require(v >= 0.0, "power_alone must be nonnegative");
        current->power_alone = v;
      }
    } else if (key == "alone") {
      require_open(key);
      const std::vector<double> v = parse_list(ls, "alone");
      require(v.size() == 6, "alone expects 6 values");
      finite(v, "alone");
      for (double x : v) require(x >= 0.0, "alone rates must be nonnegative");
      current->alone.l1rpi = v[0];
      current->alone.l2rpi = v[1];
      current->alone.brpi = v[2];
      current->alone.fppi = v[3];
      current->alone.l2mpr = v[4];
      current->alone.spi = v[5];
    } else if (key == "hist") {
      require_open(key);
      std::vector<double> v = parse_list(ls, "hist");
      require(v.size() >= 2, "hist expects tail + at least one pmf bin");
      finite(v, "hist");
      for (double x : v)
        require(x >= 0.0, "hist probabilities must be nonnegative");
      const double tail = v.front();
      v.erase(v.begin());
      try {
        // from_serialized keeps the stored bins bit-exact (no
        // renormalization), so read_store ∘ write_store is the identity
        // crash recovery's replay-equivalence guarantee needs.
        current->features.histogram =
            ReuseHistogram::from_serialized(std::move(v), tail);
      } catch (const Error& e) {
        fail(std::string("bad histogram: ") + e.what());
      }
      have_hist = true;
    } else if (key == "mpa_curve") {
      require_open(key);
      current->mpa_at_ways = parse_list(ls, "mpa_curve");
      finite(current->mpa_at_ways, "mpa_curve");
      for (double x : current->mpa_at_ways)
        require(x >= 0.0 && x <= 1.0, "mpa_curve values must be in [0, 1]");
    } else if (key == "spi_curve") {
      require_open(key);
      current->spi_at_ways = parse_list(ls, "spi_curve");
      finite(current->spi_at_ways, "spi_curve");
      for (double x : current->spi_at_ways)
        require(x > 0.0, "spi_curve values must be positive");
    } else if (key == "end") {
      require_open(key);
      require(have_hist, "profile missing histogram: " + current->name);
      try {
        current->features.validate();
      } catch (const Error& e) {
        fail(e.what());
      }
      store.profiles.push_back(std::move(*current));
      current.reset();
    } else if (key == "power_model") {
      std::string version;
      ls >> version;
      require(version == "v1", "bad power_model header: " + line);
      const std::vector<double> v = parse_list(ls, "power_model");
      require(v.size() == 7, "power_model expects cores idle c1..c5");
      finite(v, "power_model");
      const auto cores = static_cast<std::uint32_t>(v[0]);
      require(static_cast<double>(cores) == v[0] && cores > 0,
              "bad core count");
      std::array<double, 5> c{};
      for (int j = 0; j < 5; ++j) c[j] = v[2 + j];
      store.power_model.emplace(v[1], c, cores);
    } else {
      fail("unknown record key: " + key);
    }
  }
  REPRO_ENSURE(!current, "unterminated profile record");
  return store;
}

void save_store(const std::string& path, const ModelStore& store) {
  std::ofstream os(path);
  REPRO_ENSURE(os.good(), "cannot open for writing: " + path);
  os << "# cmp_models store — profiles and power model\n";
  write_profiles(os, store.profiles);
  if (store.power_model) write_power_model(os, *store.power_model);
  REPRO_ENSURE(os.good(), "write failed: " + path);
}

std::optional<ModelStore> load_store(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  return read_store(is);
}

std::string write_store_text(const ModelStore& store) {
  std::ostringstream os;
  os << "# cmp_models store — profiles and power model\n";
  write_profiles(os, store.profiles);
  if (store.power_model) write_power_model(os, *store.power_model);
  return std::move(os).str();
}

void save_store_atomic(const std::string& path, const ModelStore& store) {
  common::atomic_write_file(path, write_store_text(store));
}

std::string write_checkpoint_text(const CheckpointMeta& meta,
                                  const ModelStore& store) {
  std::ostringstream os;
  os << "# cmp_models checkpoint\n";
  os << "checkpoint v1 epoch " << meta.epoch << " power_revision "
     << meta.power_revision << " journal_next " << meta.journal_next << '\n';
  write_profiles(os, store.profiles);
  if (store.power_model) write_power_model(os, *store.power_model);
  std::string body = std::move(os).str();
  std::ostringstream footer;
  footer << "checksum crc32c " << std::hex << std::setw(8)
         << std::setfill('0') << common::crc32c(body) << '\n';
  return body + std::move(footer).str();
}

Checkpoint read_checkpoint(std::string_view text) {
  // Footer first: until the whole-file checksum verifies, no byte of
  // the checkpoint is trusted — not even the meta line.
  REPRO_ENSURE(!text.empty() && text.back() == '\n',
               "checkpoint is empty or missing final newline");
  const auto footer_start = text.find_last_of('\n', text.size() - 2);
  const std::string_view footer =
      footer_start == std::string_view::npos
          ? text
          : text.substr(footer_start + 1);
  const std::string_view body =
      footer_start == std::string_view::npos
          ? std::string_view{}
          : text.substr(0, footer_start + 1);
  std::istringstream fs{std::string(footer)};
  std::string key, algo, hex;
  fs >> key >> algo >> hex;
  REPRO_ENSURE(key == "checksum" && algo == "crc32c" && hex.size() == 8,
               "checkpoint missing checksum footer");
  std::uint32_t stored = 0;
  {
    std::istringstream hs(hex);
    hs >> std::hex >> stored;
    REPRO_ENSURE(!hs.fail(), "checkpoint checksum footer is not hex");
  }
  const std::uint32_t computed = common::crc32c(body);
  if (computed != stored) {
    std::ostringstream why;
    why << "checkpoint checksum mismatch: stored " << std::hex
        << std::setw(8) << std::setfill('0') << stored << ", computed "
        << std::setw(8) << std::setfill('0') << computed;
    throw Error(std::move(why).str());
  }

  // Meta line: the first non-comment, non-blank line of the body.
  Checkpoint checkpoint;
  std::istringstream bs{std::string(body)};
  std::string line;
  bool have_meta = false;
  std::ostringstream rest;
  while (std::getline(bs, line)) {
    if (!have_meta) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream ls(line);
      std::string head, version, k_epoch, k_power, k_journal;
      CheckpointMeta meta;
      ls >> head >> version >> k_epoch >> meta.epoch >> k_power >>
          meta.power_revision >> k_journal >> meta.journal_next;
      REPRO_ENSURE(!ls.fail() && head == "checkpoint" && version == "v1" &&
                       k_epoch == "epoch" && k_power == "power_revision" &&
                       k_journal == "journal_next",
                   "checkpoint bad meta line: " + line);
      checkpoint.meta = meta;
      have_meta = true;
    } else {
      rest << line << '\n';
    }
  }
  REPRO_ENSURE(have_meta, "checkpoint missing meta line");
  std::istringstream store_stream{std::move(rest).str()};
  checkpoint.store = read_store(store_stream);
  return checkpoint;
}

}  // namespace repro::core
