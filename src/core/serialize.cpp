#include "repro/core/serialize.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "repro/common/ensure.hpp"

namespace repro::core {

namespace {

void write_doubles(std::ostream& os, const char* key,
                   std::span<const double> values) {
  os << key;
  os.precision(std::numeric_limits<double>::max_digits10);
  for (double v : values) os << ' ' << v;
  os << '\n';
}

std::vector<double> parse_doubles(std::istringstream& is,
                                  const std::string& context) {
  std::vector<double> out;
  double v;
  while (is >> v) out.push_back(v);
  REPRO_ENSURE(is.eof(), "trailing garbage in " + context);
  return out;
}

}  // namespace

void write_profile(std::ostream& os, const ProcessProfile& p) {
  REPRO_ENSURE(p.name.find_first_of(" \n") == std::string::npos,
               "profile names must not contain whitespace");
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "profile v1 " << p.name << '\n';
  // Revision 0 (batch profiles) is the default, so seed-era stores
  // stay byte-identical and older readers never see the key.
  if (p.revision != 0) os << "revision " << p.revision << '\n';
  os << "api " << p.features.api << '\n';
  os << "alpha " << p.features.alpha << '\n';
  os << "beta " << p.features.beta << '\n';
  os << "power_alone " << p.power_alone << '\n';
  os << "alone " << p.alone.l1rpi << ' ' << p.alone.l2rpi << ' '
     << p.alone.brpi << ' ' << p.alone.fppi << ' ' << p.alone.l2mpr << ' '
     << p.alone.spi << '\n';
  std::vector<double> hist{p.features.histogram.tail_mass()};
  for (std::uint32_t d = 1; d <= p.features.histogram.max_depth(); ++d)
    hist.push_back(p.features.histogram.probability(d));
  write_doubles(os, "hist", hist);
  write_doubles(os, "mpa_curve", p.mpa_at_ways);
  write_doubles(os, "spi_curve", p.spi_at_ways);
  os << "end\n";
}

void write_profiles(std::ostream& os,
                    const std::vector<ProcessProfile>& profiles) {
  for (const ProcessProfile& p : profiles) write_profile(os, p);
}

void write_power_model(std::ostream& os, const PowerModel& model) {
  os.precision(std::numeric_limits<double>::max_digits10);
  os << "power_model v1 " << model.cores() << ' ' << model.idle_total();
  for (double c : model.coefficients()) os << ' ' << c;
  os << '\n';
}

const ProcessProfile* ModelStore::find(const std::string& name) const {
  for (const ProcessProfile& p : profiles)
    if (p.name == name) return &p;
  return nullptr;
}

ModelStore read_store(std::istream& is) {
  ModelStore store;
  std::string line;
  std::optional<ProcessProfile> current;
  bool have_hist = false;
  std::size_t lineno = 0;

  // Every rejection names the offending line: a corrupted store (bit
  // rot, truncated copy, hand edit) should point at itself, not fail
  // later inside a fill-curve integral.
  auto fail = [&](const std::string& why) -> void {
    throw Error("store line " + std::to_string(lineno) + ": " + why);
  };
  auto require = [&](bool ok, const std::string& why) {
    if (!ok) fail(why);
  };
  auto require_open = [&](const std::string& key) {
    require(current.has_value(), "'" + key + "' outside a profile");
  };
  auto finite = [&](std::span<const double> values, const std::string& key) {
    for (double v : values)
      require(std::isfinite(v), key + " contains a non-finite value");
  };
  auto parse_list = [&](std::istringstream& ls, const std::string& key) {
    try {
      return parse_doubles(ls, key);
    } catch (const Error& e) {
      fail(e.what());
      return std::vector<double>{};  // unreachable; fail() throws
    }
  };

  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string key;
    ls >> key;

    if (key == "profile") {
      require(!current, "nested profile record");
      std::string version, name;
      ls >> version >> name;
      require(version == "v1" && !name.empty(),
              "bad profile header: " + line);
      current.emplace();
      current->name = name;
      current->features.name = name;
      have_hist = false;
    } else if (key == "revision") {
      require_open(key);
      std::uint64_t v = 0;
      require(static_cast<bool>(ls >> v), "bad value for revision");
      current->revision = v;
    } else if (key == "api" || key == "alpha" || key == "beta" ||
               key == "power_alone") {
      require_open(key);
      double v;
      require(static_cast<bool>(ls >> v), "bad value for " + key);
      require(std::isfinite(v), key + " must be finite");
      if (key == "api") {
        require(v > 0.0, "api must be positive");
        current->features.api = v;
      } else if (key == "alpha") {
        require(v >= 0.0, "alpha must be nonnegative");
        current->features.alpha = v;
      } else if (key == "beta") {
        require(v > 0.0, "beta must be positive");
        current->features.beta = v;
      } else {
        require(v >= 0.0, "power_alone must be nonnegative");
        current->power_alone = v;
      }
    } else if (key == "alone") {
      require_open(key);
      const std::vector<double> v = parse_list(ls, "alone");
      require(v.size() == 6, "alone expects 6 values");
      finite(v, "alone");
      for (double x : v) require(x >= 0.0, "alone rates must be nonnegative");
      current->alone.l1rpi = v[0];
      current->alone.l2rpi = v[1];
      current->alone.brpi = v[2];
      current->alone.fppi = v[3];
      current->alone.l2mpr = v[4];
      current->alone.spi = v[5];
    } else if (key == "hist") {
      require_open(key);
      std::vector<double> v = parse_list(ls, "hist");
      require(v.size() >= 2, "hist expects tail + at least one pmf bin");
      finite(v, "hist");
      for (double x : v)
        require(x >= 0.0, "hist probabilities must be nonnegative");
      const double tail = v.front();
      v.erase(v.begin());
      try {
        current->features.histogram = ReuseHistogram(std::move(v), tail);
      } catch (const Error& e) {
        fail(std::string("bad histogram: ") + e.what());
      }
      have_hist = true;
    } else if (key == "mpa_curve") {
      require_open(key);
      current->mpa_at_ways = parse_list(ls, "mpa_curve");
      finite(current->mpa_at_ways, "mpa_curve");
      for (double x : current->mpa_at_ways)
        require(x >= 0.0 && x <= 1.0, "mpa_curve values must be in [0, 1]");
    } else if (key == "spi_curve") {
      require_open(key);
      current->spi_at_ways = parse_list(ls, "spi_curve");
      finite(current->spi_at_ways, "spi_curve");
      for (double x : current->spi_at_ways)
        require(x > 0.0, "spi_curve values must be positive");
    } else if (key == "end") {
      require_open(key);
      require(have_hist, "profile missing histogram: " + current->name);
      try {
        current->features.validate();
      } catch (const Error& e) {
        fail(e.what());
      }
      store.profiles.push_back(std::move(*current));
      current.reset();
    } else if (key == "power_model") {
      std::string version;
      ls >> version;
      require(version == "v1", "bad power_model header: " + line);
      const std::vector<double> v = parse_list(ls, "power_model");
      require(v.size() == 7, "power_model expects cores idle c1..c5");
      finite(v, "power_model");
      const auto cores = static_cast<std::uint32_t>(v[0]);
      require(static_cast<double>(cores) == v[0] && cores > 0,
              "bad core count");
      std::array<double, 5> c{};
      for (int j = 0; j < 5; ++j) c[j] = v[2 + j];
      store.power_model.emplace(v[1], c, cores);
    } else {
      fail("unknown record key: " + key);
    }
  }
  REPRO_ENSURE(!current, "unterminated profile record");
  return store;
}

void save_store(const std::string& path, const ModelStore& store) {
  std::ofstream os(path);
  REPRO_ENSURE(os.good(), "cannot open for writing: " + path);
  os << "# cmp_models store — profiles and power model\n";
  write_profiles(os, store.profiles);
  if (store.power_model) write_power_model(os, *store.power_model);
  REPRO_ENSURE(os.good(), "write failed: " + path);
}

std::optional<ModelStore> load_store(const std::string& path) {
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  return read_store(is);
}

}  // namespace repro::core
