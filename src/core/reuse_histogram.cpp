#include "repro/core/reuse_histogram.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::core {

ReuseHistogram::ReuseHistogram(std::vector<double> pmf, double tail_mass)
    : pmf_(std::move(pmf)), tail_mass_(tail_mass) {
  REPRO_ENSURE(tail_mass_ >= -1e-12, "negative tail mass");
  tail_mass_ = std::max(0.0, tail_mass_);
  double total = tail_mass_;
  for (double p : pmf_) {
    REPRO_ENSURE(p >= -1e-12, "negative probability");
    total += p;
  }
  REPRO_ENSURE(std::fabs(total - 1.0) < 1e-6,
               "histogram must sum to 1 (got " + std::to_string(total) + ")");
  for (double& p : pmf_) p = std::max(0.0, p) / total;
  tail_mass_ /= total;
  build_curve();
}

ReuseHistogram ReuseHistogram::from_serialized(std::vector<double> pmf,
                                               double tail_mass) {
  // Same validation as the normalizing constructor, but the stored
  // values are trusted verbatim so deserialization is a fixed point.
  REPRO_ENSURE(tail_mass >= 0.0, "negative tail mass");
  double total = tail_mass;
  for (double p : pmf) {
    REPRO_ENSURE(p >= 0.0, "negative probability");
    total += p;
  }
  REPRO_ENSURE(std::fabs(total - 1.0) < 1e-6,
               "histogram must sum to 1 (got " + std::to_string(total) + ")");
  ReuseHistogram h;
  h.pmf_ = std::move(pmf);
  h.tail_mass_ = tail_mass;
  h.build_curve();
  return h;
}

ReuseHistogram ReuseHistogram::from_mpa_curve(
    std::span<const double> mpa_at_ways) {
  REPRO_ENSURE(!mpa_at_ways.empty(), "need at least one MPA point");
  // Clamp measurement noise into a valid weakly-decreasing curve in
  // [0, 1], starting from MPA(0) = 1.
  std::vector<double> mpa(mpa_at_ways.begin(), mpa_at_ways.end());
  double prev = 1.0;
  for (double& m : mpa) {
    m = std::clamp(m, 0.0, prev);
    prev = m;
  }
  // Eq. 8: hist(d) = MPA(d−1) − MPA(d).
  std::vector<double> pmf(mpa.size());
  prev = 1.0;
  for (std::size_t d = 0; d < mpa.size(); ++d) {
    pmf[d] = prev - mpa[d];
    prev = mpa[d];
  }
  return ReuseHistogram(std::move(pmf), /*tail_mass=*/prev);
}

double ReuseHistogram::probability(std::uint32_t distance) const {
  REPRO_ENSURE(distance >= 1, "distances start at 1");
  if (distance > pmf_.size()) return 0.0;
  return pmf_[distance - 1];
}

std::vector<double> resample_mpa_curve(std::span<const double> s_points,
                                       std::span<const double> mpa_points,
                                       std::uint32_t ways) {
  REPRO_ENSURE(!s_points.empty() && s_points.size() == mpa_points.size(),
               "resample needs matching, non-empty S and MPA points");
  REPRO_ENSURE(ways > 0, "resample needs a positive way count");
  std::vector<std::size_t> order(s_points.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return s_points[x] < s_points[y];
  });
  std::vector<double> xs, ys;
  xs.reserve(order.size());
  ys.reserve(order.size());
  for (std::size_t idx : order) {
    double x = s_points[idx];
    if (!xs.empty() && x <= xs.back()) x = xs.back() + 1e-6;
    xs.push_back(x);
    ys.push_back(mpa_points[idx]);
  }
  std::vector<double> out(ways);
  if (xs.size() == 1) {
    // One observed size: the best available estimate everywhere.
    std::fill(out.begin(), out.end(), ys[0]);
    return out;
  }
  const math::PiecewiseLinear curve(std::move(xs), std::move(ys));
  for (std::uint32_t s = 1; s <= ways; ++s)
    out[s - 1] = curve(static_cast<double>(s));
  return out;
}

void ReuseHistogram::build_curve() {
  // Knots at S = 0, 1, …, D with MPA(S) = P(distance > S).
  std::vector<double> xs(pmf_.size() + 1);
  std::vector<double> ys(pmf_.size() + 1);
  double tail = 1.0;
  xs[0] = 0.0;
  ys[0] = 1.0;
  for (std::size_t d = 0; d < pmf_.size(); ++d) {
    tail -= pmf_[d];
    xs[d + 1] = static_cast<double>(d + 1);
    ys[d + 1] = std::max(0.0, tail);
  }
  mpa_curve_ = math::PiecewiseLinear(std::move(xs), std::move(ys));
}

}  // namespace repro::core
