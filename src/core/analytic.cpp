#include "repro/core/analytic.hpp"

#include "repro/common/ensure.hpp"

namespace repro::core {

FeatureVector analytic_features(const workload::WorkloadSpec& spec,
                                const sim::MachineConfig& machine) {
  spec.validate();
  machine.validate();

  double total = spec.new_line_weight + spec.stream_weight;
  for (double w : spec.reuse_weights) total += w;
  std::vector<double> pmf(spec.reuse_weights.size());
  for (std::size_t d = 0; d < pmf.size(); ++d)
    pmf[d] = spec.reuse_weights[d] / total;
  const double tail = (spec.new_line_weight + spec.stream_weight) / total;

  FeatureVector fv;
  fv.name = spec.name;
  fv.histogram = ReuseHistogram(std::move(pmf), tail);
  fv.api = spec.mix.l2_api;
  fv.beta = (spec.mix.base_cpi + spec.mix.l2_api * machine.l2_hit_cycles) /
            machine.frequency;
  fv.alpha = spec.mix.l2_api *
             (machine.memory_cycles - machine.l2_hit_cycles) /
             machine.frequency;
  fv.validate();
  return fv;
}

}  // namespace repro::core
