#include "repro/core/analytic.hpp"

#include "repro/common/ensure.hpp"

namespace repro::core {

FeatureVector analytic_features(const workload::WorkloadSpec& spec,
                                const sim::MachineConfig& machine,
                                Hertz frequency) {
  spec.validate();
  machine.validate();
  REPRO_ENSURE(frequency > 0.0, "analytic features need a positive clock");

  double total = spec.new_line_weight + spec.stream_weight;
  for (double w : spec.reuse_weights) total += w;
  std::vector<double> pmf(spec.reuse_weights.size());
  for (std::size_t d = 0; d < pmf.size(); ++d)
    pmf[d] = spec.reuse_weights[d] / total;
  const double tail = (spec.new_line_weight + spec.stream_weight) / total;

  FeatureVector fv;
  fv.name = spec.name;
  fv.histogram = ReuseHistogram(std::move(pmf), tail);
  fv.api = spec.mix.l2_api;
  // Eq. 3 with the 1/f factor made explicit: latencies are fixed in
  // cycles, so the *requested* clock — not the machine-wide default —
  // is the only frequency in the law.
  fv.beta = (spec.mix.base_cpi + spec.mix.l2_api * machine.l2_hit_cycles) /
            frequency;
  fv.alpha = spec.mix.l2_api *
             (machine.memory_cycles - machine.l2_hit_cycles) / frequency;
  fv.fit_frequency = frequency;
  fv.validate();
  return fv;
}

FeatureVector analytic_features(const workload::WorkloadSpec& spec,
                                const sim::MachineConfig& machine) {
  return analytic_features(spec, machine, machine.frequency);
}

FeatureVector analytic_features_for_core(const workload::WorkloadSpec& spec,
                                         const sim::MachineConfig& machine,
                                         CoreId core) {
  REPRO_ENSURE(core < machine.cores, "core out of range");
  return analytic_features(spec, machine, machine.frequency_of(core));
}

}  // namespace repro::core
