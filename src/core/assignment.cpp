#include "repro/core/assignment.hpp"

#include "repro/common/ensure.hpp"

namespace repro::core {

AssignmentSearchResult optimize_assignment(
    const CombinedEstimator& estimator,
    std::span<const ProcessProfile> profiles,
    AssignmentObjective objective) {
  const std::uint32_t cores = estimator.machine().cores;
  const std::size_t k = profiles.size();
  REPRO_ENSURE(k > 0, "nothing to assign");

  AssignmentSearchResult best;
  std::vector<std::uint32_t> placement(k, 0);
  bool have_best = false;

  while (true) {
    Assignment a = Assignment::empty(cores);
    for (std::size_t p = 0; p < k; ++p)
      a.per_core[placement[p]].push_back(p);
    const CombinedEstimator::Detailed detail =
        estimator.estimate_detailed(profiles, a);
    const double value = objective == AssignmentObjective::kPower
                             ? detail.power
                             : detail.energy_per_instruction();
    ++best.evaluated;
    if (!have_best || value < best.objective_value) {
      best.objective_value = value;
      best.predicted_power = detail.power;
      best.predicted_throughput_ips = detail.throughput_ips;
      best.assignment = std::move(a);
      have_best = true;
    }

    // Odometer over core choices.
    std::size_t p = 0;
    while (p < k && ++placement[p] == cores) {
      placement[p] = 0;
      ++p;
    }
    if (p == k) break;
  }
  return best;
}

AssignmentSearchResult greedy_assignment(
    const CombinedEstimator& estimator,
    std::span<const ProcessProfile> profiles) {
  const std::uint32_t cores = estimator.machine().cores;
  REPRO_ENSURE(!profiles.empty(), "nothing to assign");

  AssignmentSearchResult result;
  result.assignment = Assignment::empty(cores);
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    Watts best_power = 0.0;
    CoreId best_core = 0;
    bool have = false;
    for (CoreId c = 0; c < cores; ++c) {
      Assignment trial = result.assignment;
      trial.per_core[c].push_back(p);
      const Watts power = estimator.estimate(profiles, trial);
      ++result.evaluated;
      if (!have || power < best_power) {
        best_power = power;
        best_core = c;
        have = true;
      }
    }
    result.assignment.per_core[best_core].push_back(p);
    result.predicted_power = best_power;
  }
  return result;
}

}  // namespace repro::core
