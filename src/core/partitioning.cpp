#include "repro/core/partitioning.hpp"

#include <limits>

#include "repro/common/ensure.hpp"

namespace repro::core {

namespace {

ProcessPrediction predict_at_ways(const FeatureVector& fv, double s) {
  ProcessPrediction p;
  p.effective_size = s;
  p.mpa = fv.histogram.mpa(s);
  p.spi = fv.spi_at(p.mpa);
  REPRO_ENSURE(p.spi > 0.0, "non-positive SPI under partition");
  p.aps = fv.api / p.spi;
  return p;
}

/// Per-process utility of owning `s` ways, higher = better.
double utility(const FeatureVector& fv, std::uint32_t s, std::uint32_t ways,
               PartitionObjective objective) {
  const ProcessPrediction p = predict_at_ways(fv, s);
  switch (objective) {
    case PartitionObjective::kThroughput:
      return 1.0 / p.spi;
    case PartitionObjective::kWeightedSpeedup: {
      const double spi_alone =
          fv.spi_at(fv.histogram.mpa(static_cast<double>(ways)));
      return spi_alone / p.spi;
    }
    case PartitionObjective::kMissRate:
      return -(fv.api * p.mpa / p.spi);  // negated: fewer misses better
  }
  REPRO_ENSURE(false, "unknown objective");
  __builtin_unreachable();
}

}  // namespace

std::vector<ProcessPrediction> predict_partitioned(
    const std::vector<FeatureVector>& processes,
    const std::vector<std::uint32_t>& quotas) {
  REPRO_ENSURE(!processes.empty(), "no processes");
  REPRO_ENSURE(quotas.size() == processes.size(), "quota count mismatch");
  std::vector<ProcessPrediction> out;
  out.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i) {
    processes[i].validate();
    REPRO_ENSURE(quotas[i] >= 1, "every process needs at least one way");
    out.push_back(
        predict_at_ways(processes[i], static_cast<double>(quotas[i])));
  }
  return out;
}

PartitionResult optimal_partition(
    const std::vector<FeatureVector>& processes, std::uint32_t ways,
    PartitionObjective objective) {
  const std::size_t k = processes.size();
  REPRO_ENSURE(k >= 1, "no processes");
  REPRO_ENSURE(ways >= k, "need at least one way per process");
  for (const FeatureVector& fv : processes) fv.validate();

  // dp[i][w]: best total utility allocating exactly w ways to the
  // first i processes (each ≥ 1 way). choice[i][w]: ways given to
  // process i−1 in that optimum.
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(
      k + 1, std::vector<double>(ways + 1, kNegInf));
  std::vector<std::vector<std::uint32_t>> choice(
      k + 1, std::vector<std::uint32_t>(ways + 1, 0));
  dp[0][0] = 0.0;

  for (std::size_t i = 1; i <= k; ++i) {
    for (std::uint32_t w = static_cast<std::uint32_t>(i); w <= ways; ++w) {
      for (std::uint32_t give = 1; give <= w - (i - 1); ++give) {
        if (dp[i - 1][w - give] == kNegInf) continue;
        const double value =
            dp[i - 1][w - give] +
            utility(processes[i - 1], give, ways, objective);
        if (value > dp[i][w]) {
          dp[i][w] = value;
          choice[i][w] = give;
        }
      }
    }
  }

  PartitionResult result;
  result.objective_value = dp[k][ways];
  REPRO_ENSURE(result.objective_value != kNegInf, "infeasible partition");
  result.quotas.resize(k);
  std::uint32_t w = ways;
  for (std::size_t i = k; i >= 1; --i) {
    result.quotas[i - 1] = choice[i][w];
    w -= choice[i][w];
  }
  result.predictions = predict_partitioned(processes, result.quotas);
  return result;
}

}  // namespace repro::core
