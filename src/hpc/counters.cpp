#include "repro/hpc/counters.hpp"

namespace repro::hpc {

Counters& Counters::operator+=(const Counters& o) {
  instructions += o.instructions;
  cycles += o.cycles;
  l1_refs += o.l1_refs;
  l2_refs += o.l2_refs;
  l2_misses += o.l2_misses;
  branches += o.branches;
  fp_ops += o.fp_ops;
  return *this;
}

Counters operator-(const Counters& a, const Counters& b) {
  Counters d;
  d.instructions = a.instructions - b.instructions;
  d.cycles = a.cycles - b.cycles;
  d.l1_refs = a.l1_refs - b.l1_refs;
  d.l2_refs = a.l2_refs - b.l2_refs;
  d.l2_misses = a.l2_misses - b.l2_misses;
  d.branches = a.branches - b.branches;
  d.fp_ops = a.fp_ops - b.fp_ops;
  return d;
}

EventRates EventRates::from(const Counters& delta, Seconds dt) {
  REPRO_ENSURE(dt > 0.0, "rate window must be positive");
  EventRates r;
  r.l1rps = delta.l1_refs / dt;
  r.l2rps = delta.l2_refs / dt;
  r.l2mps = delta.l2_misses / dt;
  r.brps = delta.branches / dt;
  r.fpps = delta.fp_ops / dt;
  r.ips = delta.instructions / dt;
  return r;
}

EventRates& EventRates::operator+=(const EventRates& o) {
  l1rps += o.l1rps;
  l2rps += o.l2rps;
  l2mps += o.l2mps;
  brps += o.brps;
  fpps += o.fpps;
  ips += o.ips;
  return *this;
}

PerInstructionRates PerInstructionRates::from(const Counters& totals,
                                              Seconds cpu_seconds) {
  REPRO_ENSURE(totals.instructions > 0.0, "no instructions executed");
  REPRO_ENSURE(cpu_seconds > 0.0, "no CPU time accrued");
  PerInstructionRates r;
  r.l1rpi = totals.l1_refs / totals.instructions;
  r.l2rpi = totals.l2_refs / totals.instructions;
  r.brpi = totals.branches / totals.instructions;
  r.fppi = totals.fp_ops / totals.instructions;
  r.l2mpr = totals.l2_refs > 0.0 ? totals.l2_misses / totals.l2_refs : 0.0;
  r.spi = cpu_seconds / totals.instructions;
  return r;
}

EventRates PerInstructionRates::to_event_rates() const {
  REPRO_ENSURE(spi > 0.0, "SPI must be positive to form rates");
  EventRates r;
  r.l1rps = l1rpi / spi;
  r.l2rps = l2rpi / spi;
  r.l2mps = l2rpi * l2mpr / spi;
  r.brps = brpi / spi;
  r.fpps = fppi / spi;
  r.ips = 1.0 / spi;
  return r;
}

}  // namespace repro::hpc
