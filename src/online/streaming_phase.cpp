#include "repro/online/streaming_phase.hpp"

#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::online {

StreamingPhaseDetector::StreamingPhaseDetector(
    core::PhaseDetectorOptions options)
    : options_(options) {
  REPRO_ENSURE(options_.min_phase_windows >= 1,
               "min_phase_windows must be at least 1");
  REPRO_ENSURE(options_.relative_threshold > 0.0 &&
                   options_.absolute_threshold >= 0.0,
               "bad phase thresholds");
}

bool StreamingPhaseDetector::breaks_from(const Segment& seg, double x) const {
  const double mean = seg.mean();
  const double threshold = std::max(options_.absolute_threshold,
                                    options_.relative_threshold *
                                        std::abs(mean));
  return std::abs(x - mean) > threshold;
}

void StreamingPhaseDetector::fold_candidate() {
  current_.sum += candidate_->sum;
  current_.count += candidate_->count;
  candidate_.reset();
}

std::optional<core::Phase> StreamingPhaseDetector::push(double x) {
  const std::size_t index = n_++;
  if (current_.count == 0 && !candidate_.has_value()) {
    current_.begin = index;
    current_.add(x);
    return std::nullopt;
  }

  if (!candidate_.has_value()) {
    if (breaks_from(current_, x)) {
      candidate_.emplace();
      candidate_->begin = index;
      candidate_->add(x);
    } else {
      current_.add(x);
    }
    return std::nullopt;
  }

  // A candidate is open: does this window continue the new level, fall
  // back to the old one, or jump somewhere else entirely?
  if (!breaks_from(*candidate_, x)) {
    candidate_->add(x);
    if (candidate_->count >= options_.min_phase_windows) {
      // Confirmed: the current phase ended where the candidate began.
      core::Phase finished;
      finished.begin = current_.begin;
      finished.end = candidate_->begin;
      finished.mean = current_.mean();
      current_ = *candidate_;
      candidate_.reset();
      ++confirmed_;
      return finished;
    }
    return std::nullopt;
  }
  if (!breaks_from(current_, x)) {
    // The signal came back: the excursion was a blip, not a phase.
    fold_candidate();
    current_.add(x);
    return std::nullopt;
  }
  // Consistent with neither level — restart the candidate here.
  fold_candidate();
  candidate_.emplace();
  candidate_->begin = index;
  candidate_->add(x);
  return std::nullopt;
}

std::optional<core::Phase> StreamingPhaseDetector::finish() {
  if (candidate_.has_value()) fold_candidate();
  std::optional<core::Phase> out;
  if (current_.count > 0) {
    core::Phase last;
    last.begin = current_.begin;
    last.end = n_;
    last.mean = current_.mean();
    out = last;
  }
  current_ = Segment{};
  candidate_.reset();
  n_ = 0;
  confirmed_ = 0;
  return out;
}

}  // namespace repro::online
