#include "repro/online/sanitizer.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::online {

namespace {

constexpr std::array<double hpc::Counters::*, 7> kCounterFields = {
    &hpc::Counters::instructions, &hpc::Counters::cycles,
    &hpc::Counters::l1_refs,      &hpc::Counters::l2_refs,
    &hpc::Counters::l2_misses,    &hpc::Counters::branches,
    &hpc::Counters::fp_ops,
};

double median_of(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    const double lower =
        *std::max_element(v.begin(),
                          v.begin() + static_cast<std::ptrdiff_t>(mid));
    m = 0.5 * (m + lower);
  }
  return m;
}

/// Robust spread: median absolute deviation about `median`.
double mad_of(const std::vector<double>& v, double median) {
  std::vector<double> dev;
  dev.reserve(v.size());
  for (double x : v) dev.push_back(std::fabs(x - median));
  return median_of(std::move(dev));
}

void push_rolling(std::vector<double>& v, double x, std::size_t capacity) {
  if (v.size() >= capacity) v.erase(v.begin());
  v.push_back(x);
}

/// Total event rate across every counter field — the signal the
/// auto-tuner learns a per-process ceiling for.
double event_rate(const hpc::Counters& d, double duration) {
  double total = 0.0;
  for (auto field : kCounterFields) total += d.*field;
  return total / duration;
}

}  // namespace

SampleSanitizer::SampleSanitizer(SampleSanitizerOptions options)
    : options_(std::move(options)) {
  REPRO_ENSURE(!options_.wrap_bits.empty(), "need at least one wrap width");
  for (int bits : options_.wrap_bits)
    REPRO_ENSURE(bits > 0 && bits < 64, "wrap widths must be in (0, 64)");
  REPRO_ENSURE(options_.outlier_window >= options_.outlier_min_history &&
                   options_.outlier_min_history >= 2,
               "outlier filter needs a sane history window");
  REPRO_ENSURE(options_.outlier_escape >= 1, "outlier escape must be >= 1");
  if (options_.auto_tune) {
    REPRO_ENSURE(options_.tune_prefix >= 4,
                 "auto-tune needs a prefix of at least 4 windows");
    REPRO_ENSURE(options_.tune_k > 0.0 && options_.tune_floor_ratio >= 1.0,
                 "auto-tune needs tune_k > 0 and tune_floor_ratio >= 1");
  }
}

bool SampleSanitizer::learned_violation(const sim::Sample& s) const {
  for (std::size_t pid = 0;
       pid < s.process_delta.size() && pid < tuners_.size(); ++pid) {
    const Tuner& tuner = tuners_[pid];
    if (tuner.bound <= 0.0) continue;  // ceiling not engaged yet
    const hpc::Counters& d = s.process_delta[pid];
    if (d.instructions <= 0.0) continue;  // idle windows carry no rate
    if (event_rate(d, s.duration) > tuner.bound) return true;
  }
  return false;
}

void SampleSanitizer::learn(const sim::Sample& s) {
  if (tuners_.size() < s.process_delta.size())
    tuners_.resize(s.process_delta.size());
  for (std::size_t pid = 0; pid < s.process_delta.size(); ++pid) {
    Tuner& tuner = tuners_[pid];
    if (tuner.bound > 0.0) continue;  // already engaged
    const hpc::Counters& d = s.process_delta[pid];
    if (d.instructions <= 0.0) continue;  // learn from active windows only
    tuner.rates.push_back(event_rate(d, s.duration));
    if (tuner.rates.size() < options_.tune_prefix) continue;
    const double med = median_of(tuner.rates);
    const double mad = mad_of(tuner.rates, med);
    // Robust center + the wider of two margins: k·σ̂ absorbs prefix
    // noise, the floor ratio guarantees genuine few-fold phase swings
    // stay admissible even when the prefix was eerily steady. Never
    // looser than the static bound it refines.
    const double margin = std::max(options_.tune_k * 1.4826 * mad,
                                   (options_.tune_floor_ratio - 1.0) * med);
    tuner.bound = std::min(med + margin, options_.max_events_per_second);
    tuner.rates.clear();
    tuner.rates.shrink_to_fit();
    ++stats_.learned_bounds;
  }
}

bool SampleSanitizer::repair_wraps(sim::Sample& s, bool* repaired) const {
  // A monitor that differenced a wrapped 2^B cumulative counter read
  // delta − 2^B; adding 2^B back is exact. Try the narrowest width
  // first; a delta no width can lift to a plausible value is beyond
  // repair and the caller quarantines the window.
  const double max_events =
      options_.max_events_per_second * std::max(s.duration, 0.0);
  for (hpc::Counters& delta : s.process_delta) {
    for (auto field : kCounterFields) {
      double& v = delta.*field;
      if (!(v < 0.0) || !std::isfinite(v)) continue;
      bool fixed = false;
      for (int bits : options_.wrap_bits) {
        const double lifted = v + std::ldexp(1.0, bits);
        if (lifted >= 0.0 && lifted <= max_events) {
          v = lifted;
          fixed = true;
          *repaired = true;
          break;
        }
      }
      if (!fixed) return false;
    }
  }
  return true;
}

bool SampleSanitizer::plausible(const sim::Sample& s) const {
  if (!std::isfinite(s.time) || !std::isfinite(s.duration) ||
      s.duration <= 0.0)
    return false;
  const double max_events = options_.max_events_per_second * s.duration;
  const std::size_t n = s.process_delta.size();
  if (s.process_cpu.size() != n || s.occupancy.size() != n) return false;

  for (std::size_t pid = 0; pid < n; ++pid) {
    const hpc::Counters& d = s.process_delta[pid];
    for (auto field : kCounterFields) {
      const double v = d.*field;
      if (!std::isfinite(v) || v < 0.0 || v > max_events) return false;
    }
    const double cpu = s.process_cpu[pid];
    if (!std::isfinite(cpu) || cpu < 0.0 ||
        cpu > options_.cpu_slack * s.duration)
      return false;
    const double occ = static_cast<double>(s.occupancy[pid]);
    if (!std::isfinite(occ) || occ < 0.0) return false;
    if (options_.ways > 0 && occ > static_cast<double>(options_.ways))
      return false;

    // Cross-counter physics: misses are a subset of references,
    // references and branches/FP ops are bounded per instruction.
    if (d.l2_misses > d.l2_refs) return false;  // MPA > 1
    if (d.instructions > 0.0) {
      if (d.l2_refs > options_.max_api * d.instructions) return false;
      if (d.l1_refs > options_.max_l1_per_instruction * d.instructions)
        return false;
      if (d.branches > d.instructions || d.fp_ops > d.instructions)
        return false;
    } else if (d.l2_refs > 0.0 || d.l1_refs > 0.0 || d.branches > 0.0 ||
               d.fp_ops > 0.0 || cpu > 1e-6 * s.duration) {
      // Events (or scheduled time) without instructions: a zeroed or
      // partially-zeroed counter block.
      return false;
    }
  }
  return true;
}

bool SampleSanitizer::outlier(const sim::Sample& s) {
  if (history_.size() < s.process_delta.size())
    history_.resize(s.process_delta.size());

  bool flagged = false;
  for (std::size_t pid = 0; pid < s.process_delta.size(); ++pid) {
    const hpc::Counters& d = s.process_delta[pid];
    const double cpu = s.process_cpu[pid];
    // Only windows the builder would use feed (and are judged by) the
    // filter; idle windows carry no signal.
    if (d.instructions <= 0.0 || d.l2_refs <= 0.0 || cpu <= 0.0) continue;
    const double mpa = d.mpa();
    const double spi = cpu / d.instructions;

    History& h = history_[pid];
    auto deviant = [&](const std::vector<double>& series, double x,
                       double abs_floor) {
      if (series.size() < options_.outlier_min_history) return false;
      const double med = median_of(series);
      const double mad = mad_of(series, med);
      const double dev = std::fabs(x - med);
      // All three gates must trip: robust z, ratio, absolute floor —
      // so a genuine few-fold phase change always passes.
      return dev > options_.outlier_z * 1.4826 * mad &&
             dev > options_.outlier_ratio * std::fabs(med) &&
             dev > abs_floor;
    };
    const bool is_outlier = deviant(h.mpa, mpa, options_.outlier_floor_mpa) ||
                            deviant(h.spi, spi, 0.0);

    // History tracks the raw signal (outliers included) so a sustained
    // level shift moves the median and passes on its own; the escape
    // hatch below bounds how long that can take.
    push_rolling(h.mpa, mpa, options_.outlier_window);
    push_rolling(h.spi, spi, options_.outlier_window);

    if (is_outlier) {
      ++h.consecutive_outliers;
      if (h.consecutive_outliers >= options_.outlier_escape) {
        // A run this long is a level shift, not a glitch: accept it and
        // restart the history from the new regime.
        h.mpa.assign(1, mpa);
        h.spi.assign(1, spi);
        h.consecutive_outliers = 0;
      } else {
        flagged = true;
      }
    } else {
      h.consecutive_outliers = 0;
    }
  }
  return flagged;
}

bool SampleSanitizer::sanitize(const sim::Sample& sample, sim::Sample* out) {
  ++stats_.windows;

  // Duplicate or out-of-order delivery: the sample clock must advance.
  if (any_seen_ && !(sample.time > last_time_)) {
    ++stats_.quarantined;
    ++stats_.quarantined_order;
    return false;
  }

  sim::Sample repaired_copy;
  const sim::Sample* candidate = &sample;
  bool repaired = false;
  {
    // Negative deltas are repair candidates; repairing works on a copy
    // so a clean window is forwarded bit-identical with no mutation.
    bool needs_repair = false;
    for (const hpc::Counters& d : sample.process_delta)
      for (auto field : kCounterFields)
        if (d.*field < 0.0) needs_repair = true;
    if (needs_repair) {
      repaired_copy = sample;
      if (!repair_wraps(repaired_copy, &repaired)) {
        ++stats_.quarantined;
        ++stats_.quarantined_implausible;
        return false;
      }
      candidate = &repaired_copy;
    }
  }

  if (!plausible(*candidate)) {
    ++stats_.quarantined;
    ++stats_.quarantined_implausible;
    return false;
  }
  // The learned ceiling is a plausibility refinement: it runs after the
  // static bounds (so quarantined_learned counts what ONLY tuning
  // caught) and before the outlier filter (so a rejected window never
  // pollutes the MAD history).
  if (options_.auto_tune && learned_violation(*candidate)) {
    ++stats_.quarantined;
    ++stats_.quarantined_implausible;
    ++stats_.quarantined_learned;
    return false;
  }
  if (outlier(*candidate)) {
    ++stats_.quarantined;
    ++stats_.quarantined_outlier;
    return false;
  }

  any_seen_ = true;
  last_time_ = sample.time;
  ++stats_.forwarded;
  if (repaired) ++stats_.repaired;
  if (options_.auto_tune) learn(*candidate);
  *out = *candidate;
  return true;
}

}  // namespace repro::online
