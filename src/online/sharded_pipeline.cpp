#include "repro/online/sharded_pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <iterator>
#include <tuple>
#include <utility>

#include "repro/common/ensure.hpp"
#include "repro/engine/checkpoint.hpp"

namespace repro::online {

ShardedPipeline::ShardedPipeline(engine::ModelEngine& engine,
                                 ShardedPipelineOptions options)
    : engine_(engine), options_(std::move(options)) {
  REPRO_ENSURE(options_.producers > 0, "need at least one producer lane");
  REPRO_ENSURE(options_.shards > 0, "need at least one shard");
  if (options_.builder.ways == 0) options_.builder.ways = engine_.ways();
  REPRO_ENSURE(options_.builder.ways == engine_.ways(),
               "builder grid must match the engine's cache ways");
  if (options_.harden && options_.sanitizer.ways == 0)
    options_.sanitizer.ways = engine_.ways();
  // An empty shard can do no work: clamp to one shard per lane.
  if (options_.shards > options_.producers)
    options_.shards = options_.producers;

  lane_shard_.resize(options_.producers);
  lane_ring_.resize(options_.producers);
  std::vector<std::size_t> ring_counts(options_.shards, 0);
  for (std::size_t lane = 0; lane < options_.producers; ++lane) {
    lane_shard_[lane] = lane % options_.shards;
    lane_ring_[lane] = ring_counts[lane_shard_[lane]]++;
  }

  PipelineShardOptions shard_options;
  shard_options.harden = options_.harden;
  shard_options.sanitizer = options_.sanitizer;
  shard_options.quarantine_capacity = options_.quarantine_capacity;
  // Forwarded windows only need copying back when the refitter will
  // consume them.
  shard_options.capture_forwarded = options_.power.enabled;
  shards_.reserve(options_.shards);
  // The base is private; the upcast is only accessible in class scope.
  BatchSink& sink = *this;
  for (std::size_t s = 0; s < options_.shards; ++s)
    shards_.push_back(
        std::make_unique<PipelineShard>(s, sink, shard_options));

  {
    common::MutexLock lock(mutex_);
    delivered_.resize(options_.producers);
    if (options_.power.enabled)
      refitter_.emplace(engine_.machine().cores, options_.power);
  }

  // Durability (ISSUE 8): recover BEFORE any worker can push an event,
  // so the recovered engine state and the resumed seq space are in
  // place when the first new revision lands.
  const DurabilityOptions& durability = options_.durability;
  if (durability.recover && (!durability.checkpoint_path.empty() ||
                             !durability.journal_path.empty()))
    recovery_ = recover_engine(engine_, durability.checkpoint_path,
                               durability.journal_path);
  if (!durability.checkpoint_path.empty() ||
      !durability.journal_path.empty()) {
    common::MutexLock lock(mutex_);
    next_seq_ = recovery_.next_seq;
    if (!durability.journal_path.empty()) {
      // Keep exactly the prefix recovery folded into the engine; a
      // torn/corrupt tail (and, after a replay divergence, everything
      // past the last replayed frame) is cut before the first append.
      const std::uint64_t keep =
          durability.recover ? recovery_.durable_bytes : 0;
      const bool opened =
          journal_.open(durability.journal_path, durability.journal, keep);
      journal_enabled_.store(opened, std::memory_order_release);
      if (!opened) {
        // relaxed: statistics counter; surfaced via stats() only.
        journal_write_failures_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // kOnRevision promises the record is durable before the apply
        // returns, so it must append inline; the relaxed policies move
        // encode + append + fsync onto a dedicated writer so shards
        // never wait on file I/O behind the coordinator lock.
        journal_async_ =
            durability.journal.fsync != JournalFsync::kOnRevision;
        if (journal_async_)
          journal_thread_ =
              std::thread(&ShardedPipeline::journal_loop, this);
      }
    }
  }

  if (!options_.inline_ingest) {
    ingress_.reserve(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s) {
      auto in = std::make_unique<Ingress>();
      in->rings = std::make_unique<common::RingSet<sim::Sample>>(
          ring_counts[s], options_.ring_capacity);
      ingress_.push_back(std::move(in));
    }
    for (std::size_t s = 0; s < options_.shards; ++s)
      ingress_[s]->worker =
          std::thread(&ShardedPipeline::worker_loop, this, s, 0);
    if (options_.supervisor.enabled)
      supervisor_ = std::thread(&ShardedPipeline::supervisor_loop, this);
  }
}

ShardedPipeline::~ShardedPipeline() {
  if (!ingress_.empty()) {
    stop_.store(true, std::memory_order_release);
    // The supervisor goes first so it cannot restart a worker we are
    // about to join.
    if (supervisor_.joinable()) {
      {
        common::MutexLock lock(supervisor_mutex_);
        supervisor_cv_.notify_all();
      }
      supervisor_.join();
    }
    // Same two-fence handshake as enqueue(): either a worker's
    // park-time re-check sees stop_, or we see it parked and wake it.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    for (auto& in : ingress_) {
      common::MutexLock lock(in->ring_mutex);
      in->ring_cv.notify_one();
    }
    // A worker the supervisor detached (wedged in a fault hook) is no
    // longer joinable; tests must release such hooks before
    // destruction.
    for (auto& in : ingress_)
      if (in->worker.joinable()) in->worker.join();  // drains its rings
  }
  // The journal writer outlives the workers: events they delivered are
  // still draining onto disk. journal_loop empties its queue before
  // honoring the stop flag.
  if (journal_thread_.joinable()) {
    {
      common::MutexLock lock(journal_mutex_);
      journal_stop_ = true;
      journal_cv_.notify_all();
    }
    journal_thread_.join();
  }
}

void ShardedPipeline::monitor(ProcessId pid, DieId die,
                              engine::ProcessHandle handle) {
  // The baseline comes from the engine's current snapshot — a
  // lock-free read, so no lock-order interaction with mutex_.
  const core::ProcessProfile baseline = engine_.profile(handle);
  auto builder =
      std::make_unique<ProfileBuilder>(baseline.name, options_.builder);
  builder->set_baseline(baseline);
  monitor_slot(pid, die, baseline.name, handle, std::move(builder));
}

void ShardedPipeline::monitor(ProcessId pid, DieId die, std::string name) {
  auto builder = std::make_unique<ProfileBuilder>(name, options_.builder);
  monitor_slot(pid, die, std::move(name), std::nullopt, std::move(builder));
}

void ShardedPipeline::monitor_slot(
    ProcessId pid, DieId die, std::string name,
    std::optional<engine::ProcessHandle> handle,
    std::unique_ptr<ProfileBuilder> builder) {
  const DieId lane = options_.producers > 1 ? die : 0;
  REPRO_ENSURE(lane < options_.producers,
               "monitor die out of producer-lane range");
  std::size_t slot_index = 0;
  std::size_t shard = 0;
  {
    common::MutexLock lock(mutex_);
    slot_index = slots_.size();
    auto slot = std::make_unique<Slot>();
    slot->pid = pid;
    slot->lane = lane;
    slot->shard = lane_shard_[lane];
    slot->name = std::move(name);
    slot->handle = handle;
    shard = slot->shard;
    slots_.push_back(std::move(slot));
  }
  // Outside mutex_: the coordinator never holds its lock while calling
  // into a shard (the lock order runs the other way).
  shards_[shard]->attach(lane, slot_index, pid, std::move(builder));
}

std::optional<engine::ProcessHandle> ShardedPipeline::handle_of(
    ProcessId pid) const {
  common::MutexLock lock(mutex_);
  for (const auto& s : slots_)
    if (s->pid == pid) return s->handle;
  return std::nullopt;
}

void ShardedPipeline::set_query(engine::CoScheduleQuery query) {
  common::MutexLock lock(mutex_);
  query_ = std::move(query);
  latest_.reset();  // stale seeds would belong to the previous query
}

void ShardedPipeline::push(const sim::Sample& sample) {
  const DieId lane = options_.producers > 1 ? sample.die : 0;
  REPRO_ENSURE(lane < options_.producers,
               "sample die tag out of producer-lane range");
  if (ingress_.empty()) {
    // inline_ingest: the whole chain runs here, on the caller's thread.
    shards_[lane_shard_[lane]]->ingest(lane, sample);
    return;
  }
  enqueue(lane, sample);
}

void ShardedPipeline::enqueue(DieId lane, const sim::Sample& sample) {
  Ingress& in = *ingress_[lane_shard_[lane]];
  // A failed shard (supervisor out of restarts) accepts nothing: its
  // windows count as dropped and producers never block on it.
  if (in.failed.load(std::memory_order_acquire)) {
    // relaxed: statistics counter; no reader orders state off it.
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::size_t ring = lane_ring_[lane];
  sim::Sample window = sample;
  if (!in.rings->try_push(ring, window)) {
    if (options_.backpressure == Backpressure::kDrop) {
      // Count-and-drop: the producer never waits; the hole is
      // surfaced through PipelineHealth::windows_dropped.
      // relaxed: statistics counter; orders nothing.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // kBlock: register as a drain waiter, fence, then re-try — the
    // worker's symmetric fence-then-check after each pop guarantees
    // that either our retry sees the freed slot or the worker sees
    // our registration and notifies (no lost wakeup).
    common::MutexLock lock(in.ring_mutex);
    // relaxed: the seq_cst fence below orders the count against the
    // worker's symmetric fence-then-check; ring_mutex covers the cv.
    in.drain_waiters.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    bool pushed;
    while (!(pushed = in.rings->try_push(ring, window)) &&
           !in.failed.load(std::memory_order_acquire))
      in.drain_cv.wait(in.ring_mutex);
    // relaxed: waiter bookkeeping only; still under ring_mutex.
    in.drain_waiters.fetch_sub(1, std::memory_order_relaxed);
    if (!pushed) {
      // The shard failed while we were parked: the window is lost.
      // relaxed: statistics counter; orders nothing.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  in.enqueued.fetch_add(1, std::memory_order_release);
  // Wake the shard worker if it parked on empty rings: publish (the
  // push above), fence, check the parked flag. Either the worker's
  // park-time empty re-check sees our element, or we see its flag —
  // losing the wakeup would need both to fail.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // relaxed: the seq_cst fence above supplies the flag's ordering.
  if (in.worker_parked.load(std::memory_order_relaxed)) {
    common::MutexLock lock(in.ring_mutex);
    in.ring_cv.notify_one();
  }
}

void ShardedPipeline::worker_loop(std::size_t shard,
                                  std::uint64_t my_generation) {
  Ingress& in = *ingress_[shard];
  const auto notify_drain = [&] {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // relaxed: the seq_cst fence above supplies the ordering.
    if (in.drain_waiters.load(std::memory_order_relaxed) > 0) {
      common::MutexLock lock(in.ring_mutex);
      in.drain_cv.notify_all();
    }
  };
  for (;;) {
    // A retired worker (the supervisor bumped the generation to
    // preempt or replace it) exits without touching shard state.
    if (in.generation.load(std::memory_order_acquire) != my_generation)
      return;
    // relaxed: liveness tick; the supervisor only compares successive
    // values of this counter, no payload rides on it.
    in.heartbeat.fetch_add(1, std::memory_order_relaxed);
    sim::Sample window;
    if (in.rings->try_pop(window)) {
      const DieId lane = options_.producers > 1 ? window.die : 0;
      bool alive = true;
      try {
        // Fault seam first, outside every lock: a throwing hook kills
        // this worker (the supervisor restarts it); a blocking hook
        // wedges it (the supervisor preempts via the generation).
        if (options_.supervisor.fault_hook)
          options_.supervisor.fault_hook(shard, window);
        if (in.generation.load(std::memory_order_acquire) !=
            my_generation) {
          // Preempted while wedged in the hook: the popped window is
          // lost — account for it, close the drain count, and leave.
          // relaxed: statistics counter; orders nothing.
          dropped_.fetch_add(1, std::memory_order_relaxed);
          in.drained.fetch_add(1, std::memory_order_release);
          notify_drain();
          return;
        }
        shards_[shard]->ingest(lane, window);
      } catch (const std::exception& e) {
        // The window dies with the worker; everything the shard and
        // coordinator committed before the throw stands (their locks
        // released on unwind). Publish the cause, then report dead.
        // relaxed: statistics counter; orders nothing.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        {
          common::MutexLock lock(in.ring_mutex);
          in.last_error = e.what();
        }
        alive = false;
      }
      in.drained.fetch_add(1, std::memory_order_release);
      // Wake a kBlock producer waiting for a slot or a drain waiter —
      // same fence-then-check as the producer side.
      notify_drain();
      if (!alive) {
        in.worker_dead.store(true, std::memory_order_release);
        return;
      }
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;  // rings drained
    // Park: publish the flag, fence, re-check the rings and stop_
    // while holding ring_mutex (producers notify under it, so a wakeup
    // posted after our re-check cannot slip past the wait).
    common::MutexLock lock(in.ring_mutex);
    // relaxed: the seq_cst fence below (paired with the producer's)
    // orders the flag against the ring contents.
    in.worker_parked.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (in.rings->empty() &&
        !stop_.load(std::memory_order_relaxed) &&  // relaxed: fence above
        in.generation.load(std::memory_order_relaxed) ==  // relaxed: ditto
            my_generation)
      in.ring_cv.wait(in.ring_mutex);
    // relaxed: cleared under the same mutex; no payload rides on it.
    in.worker_parked.store(false, std::memory_order_relaxed);
  }
}

void ShardedPipeline::drain_rings() {
  // Wait until every shard worker has ingested everything enqueued
  // before this call. Windows pushed concurrently with the drain are
  // not covered — callers (finish, tests) drain after producers stop.
  for (auto& entry : ingress_) {
    Ingress& in = *entry;
    const std::uint64_t target = in.enqueued.load(std::memory_order_acquire);
    common::MutexLock lock(in.ring_mutex);
    // relaxed: the seq_cst fence below orders the count against the
    // worker's symmetric fence-then-check; ring_mutex covers the cv.
    in.drain_waiters.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // A failed shard will never drain again — fail_shard counted its
    // backlog as dropped and notifies, so waiters fall through here.
    while (in.drained.load(std::memory_order_acquire) < target &&
           !in.failed.load(std::memory_order_acquire))
      in.drain_cv.wait(in.ring_mutex);
    // relaxed: waiter bookkeeping only; still under ring_mutex.
    in.drain_waiters.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ShardedPipeline::supervisor_loop() {
  const std::size_t n = ingress_.size();
  // All supervision state lives on the supervisor's own stack — no
  // shared mutable supervisor state, so no lock interactions beyond
  // the leaf-level ring_mutex it takes to nudge condvars.
  std::vector<std::uint64_t> last_drained(n, 0);
  std::vector<std::uint64_t> last_heartbeat(n, 0);
  std::vector<std::size_t> no_progress(n, 0);
  std::vector<std::size_t> cooldown(n, 0);
  std::vector<std::size_t> restarts(n, 0);
  for (;;) {
    {
      common::MutexLock lock(supervisor_mutex_);
      if (stop_.load(std::memory_order_acquire)) return;
      supervisor_cv_.wait_for(supervisor_mutex_, options_.supervisor.tick);
      if (stop_.load(std::memory_order_acquire)) return;
    }
    for (std::size_t s = 0; s < n; ++s) {
      Ingress& in = *ingress_[s];
      if (in.failed.load(std::memory_order_acquire)) continue;
      if (cooldown[s] > 0) {
        // Backoff window after a restart: give the fresh worker
        // cooldown ticks of grace before judging its progress.
        --cooldown[s];
        no_progress[s] = 0;
        last_drained[s] = in.drained.load(std::memory_order_acquire);
        // relaxed: progress tick, only compared to its own past value.
        last_heartbeat[s] = in.heartbeat.load(std::memory_order_relaxed);
        continue;
      }
      if (in.worker_dead.load(std::memory_order_acquire)) {
        // The worker exited via an exception: joinable, state known.
        cooldown[s] = restart_or_fail_shard(s, &restarts[s]);
        no_progress[s] = 0;
        continue;
      }
      const std::uint64_t drained = in.drained.load(std::memory_order_acquire);
      // relaxed: progress tick, only compared to its own past value.
      const std::uint64_t heartbeat =
          in.heartbeat.load(std::memory_order_relaxed);  // relaxed: ditto
      const bool behind = drained < in.enqueued.load(std::memory_order_acquire);
      if (behind && drained == last_drained[s]) {
        ++no_progress[s];
        if (no_progress[s] == options_.supervisor.stall_ticks) {
          // First escalation: flag the stall and nudge the condvars —
          // this alone heals a lost wakeup without losing any state.
          // relaxed: statistics counter; orders nothing.
          stalls_detected_.fetch_add(1, std::memory_order_relaxed);
          common::MutexLock lock(in.ring_mutex);
          in.ring_cv.notify_all();
        } else if (no_progress[s] >= 2 * options_.supervisor.stall_ticks &&
                   heartbeat == last_heartbeat[s] &&
                   !in.worker_parked.load(std::memory_order_acquire)) {
          // Still frozen after the nudge, heartbeat dead, and not
          // parked: the worker is wedged mid-iteration (a stuck fault
          // hook, a livelocked dependency). Preempt-restart.
          cooldown[s] = restart_or_fail_shard(s, &restarts[s]);
          no_progress[s] = 0;
        }
      } else {
        no_progress[s] = 0;
      }
      last_drained[s] = drained;
      last_heartbeat[s] = heartbeat;
    }
  }
}

std::size_t ShardedPipeline::restart_or_fail_shard(
    std::size_t shard, std::size_t* restarts_used) {
  Ingress& in = *ingress_[shard];
  if (*restarts_used >= options_.supervisor.max_restarts) {
    fail_shard(shard);
    return 0;
  }
  ++*restarts_used;
  const bool was_dead = in.worker_dead.load(std::memory_order_acquire);
  // Retire the incumbent: bump the generation, then wake it in case it
  // is parked (a parked worker re-checks the generation before waiting
  // again and exits).
  in.generation.fetch_add(1, std::memory_order_release);
  {
    common::MutexLock lock(in.ring_mutex);
    in.ring_cv.notify_all();
  }
  if (in.worker.joinable()) {
    if (was_dead) {
      in.worker.join();
    } else {
      // Wedged, not dead: it may never return, and joining would wedge
      // the supervisor too. Detach — the stale generation makes it
      // exit without touching shard state if it ever resumes.
      in.worker.detach();
    }
  }
  in.worker_dead.store(false, std::memory_order_release);
  // Only a *joined* worker is provably gone; then the shard's streaming
  // state can be rebuilt from last-good. A detached wedged worker may
  // still be inside ingest() holding the shard mutex — leave its state
  // alone and let the fresh worker share it.
  if (was_dead) shards_[shard]->reset_streams();
  in.worker = std::thread(&ShardedPipeline::worker_loop, this, shard,
                          in.generation.load(std::memory_order_acquire));
  // relaxed: statistics counter; surfaced via stats() only.
  shard_restarts_.fetch_add(1, std::memory_order_relaxed);
  return options_.supervisor.backoff_ticks * *restarts_used;
}

void ShardedPipeline::fail_shard(std::size_t shard) {
  Ingress& in = *ingress_[shard];
  in.generation.fetch_add(1, std::memory_order_release);  // retire worker
  const std::uint64_t enqueued = in.enqueued.load(std::memory_order_acquire);
  const std::uint64_t drained = in.drained.load(std::memory_order_acquire);
  // The undrained backlog is lost: count it so windows_dropped stays an
  // honest account. (If a detached wedged worker later drains a few of
  // these, they double-count — acceptable for a shard being abandoned.)
  if (enqueued > drained) {
    // relaxed: statistics counter; orders nothing.
    dropped_.fetch_add(enqueued - drained, std::memory_order_relaxed);
  }
  in.failed.store(true, std::memory_order_release);
  // relaxed: statistics counter; surfaced via stats() only.
  shards_failed_.fetch_add(1, std::memory_order_relaxed);
  {
    common::MutexLock lock(in.ring_mutex);
    in.ring_cv.notify_all();   // unpark + retire the worker
    in.drain_cv.notify_all();  // release kBlock producers/drain waiters
  }
  if (in.worker.joinable()) {
    if (in.worker_dead.load(std::memory_order_acquire))
      in.worker.join();
    else
      in.worker.detach();
  }
}

void ShardedPipeline::deliver(WindowBatch batch) {
  common::MutexLock lock(mutex_);
  ++windows_seen_;
  switch (batch.verdict) {
    case WindowVerdict::kForwarded:
      ++windows_forwarded_;
      break;
    case WindowVerdict::kRepaired:
      ++windows_forwarded_;
      ++windows_repaired_;
      break;
    case WindowVerdict::kQuarantinedOrder:
      ++q_order_;
      break;
    case WindowVerdict::kQuarantinedImplausible:
      ++q_implausible_;
      break;
    case WindowVerdict::kQuarantinedOutlier:
      ++q_outlier_;
      break;
  }
  phase_changes_ += batch.phase_changes;
  frequency_steps_ += batch.frequency_steps;

  if (options_.producers <= 1) {
    // Single-lane mode: no merge, every window processes immediately —
    // the OnlinePipeline-parity path.
    std::vector<WindowBatch> group;
    group.push_back(std::move(batch));
    process_group_locked(std::move(group));
    return;
  }

  const DieId lane = batch.die;
  if (delivered_[lane].has_value() && batch.seq <= *delivered_[lane]) {
    // Late or duplicate seq (fault-injected streams): the watermark
    // has already passed it, so it processes out-of-band. Its window
    // was quarantined by the sanitizer's order check, so nothing
    // order-dependent rides on it.
    std::vector<WindowBatch> group;
    group.push_back(std::move(batch));
    process_group_locked(std::move(group));
    return;
  }
  delivered_[lane] = batch.seq;
  const std::pair<std::uint64_t, DieId> key{batch.seq, lane};
  pending_.emplace(key, std::move(batch));
  release_ready_locked();
}

void ShardedPipeline::release_ready_locked() {
  // Frontier = the newest seq every lane has reached. A lane that has
  // never delivered blocks release entirely (finish() flushes).
  std::uint64_t frontier = 0;
  bool first = true;
  for (const auto& d : delivered_) {
    if (!d.has_value()) return;
    frontier = first ? *d : std::min(frontier, *d);
    first = false;
  }
  // Release whole same-seq groups in ascending seq order; map keys are
  // (seq, lane), so each group drains in ascending die order.
  while (!pending_.empty() && pending_.begin()->first.first <= frontier) {
    const std::uint64_t seq = pending_.begin()->first.first;
    std::vector<WindowBatch> group;
    while (!pending_.empty() && pending_.begin()->first.first == seq) {
      group.push_back(std::move(pending_.begin()->second));
      pending_.erase(pending_.begin());
    }
    process_group_locked(std::move(group));
  }
}

void ShardedPipeline::process_group_locked(std::vector<WindowBatch> group) {
  if (!options_.coalesce_resolves) {
    for (WindowBatch& batch : group) {
      for (ShardCandidate& c : batch.candidates) {
        std::optional<RevisionEvent> event = apply_candidate_locked(
            *slots_[c.slot], std::move(c.revision), c.time, /*solve=*/true);
        if (event.has_value()) {
          PipelineEvent wrapped;
          wrapped.payload = std::move(*event);
          record_event_locked(std::move(wrapped));
        }
      }
    }
  } else {
    // Phase coincidence: a workload-wide phase change revises several
    // lanes in one merge group. Apply every revision (each passes its
    // own gates) but re-price the co-schedule once, on the last — the
    // intermediate equilibria would be discarded one deliver later.
    std::vector<RevisionEvent> applied;
    for (WindowBatch& batch : group)
      for (ShardCandidate& c : batch.candidates)
        if (auto event = apply_candidate_locked(*slots_[c.slot],
                                                std::move(c.revision),
                                                c.time, /*solve=*/false))
          applied.push_back(std::move(*event));
    if (!applied.empty()) {
      const bool solved = solve_query_locked(applied.back());
      if (solved && applied.size() > 1)
        coalesced_resolves_ += applied.size() - 1;
    }
    for (RevisionEvent& event : applied) {
      PipelineEvent wrapped;
      wrapped.payload = std::move(event);
      record_event_locked(std::move(wrapped));
    }
  }
  refit_group_locked(group);
}

std::optional<RevisionEvent> ShardedPipeline::apply_candidate_locked(
    Slot& slot, ProfileRevision revision, Seconds time, bool solve) {
  // Degradation gate 1: a revision whose Eq. 3 fit barely explains its
  // own windows (mixed phases, residual corruption) must not replace a
  // working profile. Skipped while the process has no profile at all —
  // any model beats none for cold start.
  if (options_.harden && slot.handle.has_value() &&
      options_.max_fit_rms > 0.0 &&
      !(revision.quality.fit_rms <= options_.max_fit_rms)) {
    ++revisions_rejected_;
    return std::nullopt;
  }

  // Degradation gate 2: validation. try_apply/register_process
  // validate before touching the registry, so a refusal here leaves the
  // engine's registry and memoized artifacts exactly as they were.
  if (slot.handle.has_value()) {
    const engine::ApplyResult applied = engine_.try_apply(
        engine::Revision::process(*slot.handle, std::move(revision.profile)));
    if (!applied.applied) {
      // The unhardened pipeline (the chaos bench's control arm)
      // propagates the validation error out of push(); the hardened
      // one degrades to last-good and counts the rejection.
      REPRO_ENSURE(options_.harden, "revision rejected: " + applied.reason);
      ++revisions_rejected_;
      return std::nullopt;
    }
  } else if (options_.harden) {
    try {
      slot.handle = engine_.register_process(std::move(revision.profile));
    } catch (const Error&) {
      ++revisions_rejected_;
      return std::nullopt;
    }
  } else {
    slot.handle = engine_.register_process(std::move(revision.profile));
  }
  ++revisions_;

  RevisionEvent event;
  event.time = time;
  event.handle = *slot.handle;
  event.revision = engine_.profile(*slot.handle).revision;
  event.quality = revision.quality;
  if (solve) solve_query_locked(event);
  return event;
}

bool ShardedPipeline::solve_query_locked(RevisionEvent& event) {
  if (!query_.has_value()) return false;
  bool all_registered = true;
  for (const auto& s : slots_)
    if (!s->handle.has_value()) all_registered = false;
  if (!all_registered) return false;
  engine::CoScheduleQuery q = *query_;
  q.warm_start = warm_seeds_locked();
  try {
    engine::SystemPrediction prediction = engine_.predict(q);
    ++resolves_;
    solver_iterations_ +=
        static_cast<std::uint64_t>(prediction.solver_iterations);
    event.resolved = true;
    event.solver_iterations = prediction.solver_iterations;
    event.prediction = prediction;
    latest_ = std::move(prediction);
  } catch (const Error&) {
    // Degradation gate 3: a failed re-solve (Newton AND its bisection
    // fallback) must not escape push(). Re-price from the last-good
    // equilibrium when there is one.
    if (!options_.harden) throw;
    ++degraded_resolves_;
    event.degraded = true;
    if (latest_.has_value()) {
      engine::SystemPrediction carried = *latest_;
      carried.degraded = true;
      carried.solver_iterations = 0;
      event.resolved = true;
      event.prediction = carried;
      latest_ = std::move(carried);
    }
  }
  return true;
}

std::vector<double> ShardedPipeline::warm_seeds_locked() const {
  if (!latest_.has_value()) return {};
  // Regroup the previous operating points per core (predict preserves
  // slot order within a core), then flatten in (core, slot) order —
  // the CoScheduleQuery::warm_start convention.
  std::vector<std::vector<double>> per_core(engine_.machine().cores);
  for (const engine::ProcessOperatingPoint& pt : latest_->processes)
    per_core[pt.core].push_back(pt.prediction.effective_size);
  std::vector<double> seeds;
  for (CoreId c = 0; c < engine_.machine().cores; ++c) {
    if (per_core[c].size() != query_->assignment.per_core[c].size())
      return {};  // query changed shape since the last solve: cold
    for (double s : per_core[c]) seeds.push_back(s);
  }
  return seeds;
}

void ShardedPipeline::refit_group_locked(
    const std::vector<WindowBatch>& group) {
  if (!refitter_.has_value()) return;
  if (options_.producers <= 1) {
    for (const WindowBatch& batch : group)
      if (batch.window.has_value()) refit_power_locked(*batch.window);
    return;
  }
  // Multi-lane: power is measured at the package, so the refitter
  // needs the machine-wide window back. Re-assemble it only from a
  // complete group in which every lane's slice survived sanitization —
  // a partial sum would misattribute the package power to a subset of
  // the activity. Slices partition the per-core/per-process arrays
  // exactly (System::split_sample), so summing reconstructs the
  // original; the package-level power readings ride on every slice and
  // are taken from the first.
  if (group.size() != options_.producers) return;
  for (const WindowBatch& batch : group)
    if (!batch.window.has_value()) return;
  sim::Sample whole = *group.front().window;
  for (std::size_t i = 1; i < group.size(); ++i) {
    const sim::Sample& slice = *group[i].window;
    if (slice.core_rates.size() != whole.core_rates.size() ||
        slice.occupancy.size() != whole.occupancy.size() ||
        slice.process_delta.size() != whole.process_delta.size() ||
        slice.process_cpu.size() != whole.process_cpu.size())
      return;  // not slices of one machine window: skip this refit
    for (std::size_t c = 0; c < whole.core_rates.size(); ++c)
      whole.core_rates[c] += slice.core_rates[c];
    for (std::size_t p = 0; p < whole.occupancy.size(); ++p) {
      whole.occupancy[p] += slice.occupancy[p];
      whole.process_delta[p] += slice.process_delta[p];
      whole.process_cpu[p] += slice.process_cpu[p];
    }
  }
  refit_power_locked(whole);
}

void ShardedPipeline::refit_power_locked(const sim::Sample& sample) {
  // Refits revise an existing calibration; a performance-only engine
  // has nothing to revise. Both reads resolve against the engine's
  // current snapshot — lock-free, no lock-order interaction.
  if (!engine_.has_power_model()) return;
  const core::PowerModel incumbent = engine_.power_model();
  std::optional<PowerRefitAttempt> attempt =
      refitter_->push(sample, incumbent);
  if (!attempt.has_value()) return;

  PowerRevisionEvent event;
  event.time = attempt->time;
  event.reason = attempt->reason;
  event.rank_deficient = attempt->rank_deficient;
  event.r2 = attempt->fit.r2;
  event.accuracy = attempt->fit.accuracy;
  event.candidate_err_pct = attempt->candidate_err_pct;
  event.incumbent_err_pct = attempt->incumbent_err_pct;
  event.window_samples = attempt->window_samples;
  if (attempt->accepted) {
    event.idle = attempt->model->idle_total();
    event.coefficients = attempt->model->coefficients();
    // Validate-before-mutate: a refusal leaves last-good installed
    // (and published) and carries the engine's reason into the event.
    const engine::ApplyResult applied =
        engine_.try_apply(engine::Revision::power_model(*attempt->model));
    if (applied.applied) {
      event.applied = true;
      event.revision = engine_.power_revision();
      ++power_revisions_;
    } else {
      event.reason = applied.reason;
      ++power_rejected_;
    }
  } else {
    if (!attempt->rank_deficient) {
      event.idle = attempt->fit.intercept;
      for (std::size_t i = 0; i < event.coefficients.size(); ++i)
        event.coefficients[i] = attempt->fit.coefficients[i];
    }
    ++power_rejected_;
  }
  PipelineEvent wrapped;
  wrapped.payload = std::move(event);
  record_event_locked(std::move(wrapped));
}

void ShardedPipeline::record_event_locked(PipelineEvent event) {
  event.seq = next_seq_++;
  journal_event_locked(event);
  events_.push_back(std::move(event));
  if (options_.history_capacity > 0 &&
      events_.size() > options_.history_capacity) {
    events_.pop_front();
    ++history_evicted_;
  }
  if (options_.durability.checkpoint_every > 0 &&
      !options_.durability.checkpoint_path.empty() &&
      events_since_checkpoint_ >= options_.durability.checkpoint_every)
    checkpoint_locked();
}

void ShardedPipeline::journal_event_locked(const PipelineEvent& event) {
  if (!journal_enabled_.load(std::memory_order_acquire)) return;
  // A rejected power refit changed no engine state — nothing to make
  // durable. (Rejected profile revisions never reach the log at all.)
  if (event.is_power() && !event.power().applied) return;
  JournalRecord record;
  record.seq = event.seq;
  record.time = event.time();
  if (event.is_profile()) {
    const RevisionEvent& rev = event.profile();
    record.handle = rev.handle;
    record.revision = rev.revision;
    // The snapshot read is exact: we hold mutex_, every apply happens
    // under mutex_, and try_apply published before returning — so this
    // IS the profile the event's apply installed.
    record.profile = engine_.profile(rev.handle);
  } else {
    record.revision = event.power().revision;
    record.power = engine_.power_model();
  }
  if (journal_async_) {
    // Hand the record (a self-contained copy of the applied state) to
    // the writer. Enqueue happens under mutex_, so queue order is seq
    // order is file frame order. The event counts as journaled NOW —
    // the count tracks the event log handed to the journal, and
    // flush_journal()/~ShardedPipeline guarantee every handed record
    // reaches the file (or latches a write failure).
    {
      common::MutexLock jlock(journal_mutex_);
      // The writer only parks when the queue is empty — so a push onto
      // a non-empty queue never needs a wake (the writer will re-check
      // before waiting). Skipping the notify keeps the hot path from
      // paying a futex wake per event.
      const bool was_empty = journal_queue_.empty();
      journal_queue_.push_back(std::move(record));
      if (was_empty) journal_cv_.notify_all();
    }
    ++journaled_events_;
    ++events_since_checkpoint_;
    return;
  }
  if (!journal_.append(record)) {
    // Latch: count the failure once, stop journaling, keep modeling.
    // relaxed: statistics counter; the enabled flag below carries the
    // release ordering readers rely on.
    journal_write_failures_.fetch_add(1, std::memory_order_relaxed);
    journal_enabled_.store(false, std::memory_order_release);
    return;
  }
  ++journaled_events_;
  ++events_since_checkpoint_;
}

void ShardedPipeline::journal_loop() {
  std::deque<JournalRecord> batch;
  for (;;) {
    {
      common::MutexLock lock(journal_mutex_);
      journal_busy_ = false;
      journal_cv_.notify_all();  // flush_journal waits on empty && !busy
      journal_cv_.wait(journal_mutex_, [this]()
                                           REPRO_REQUIRES(journal_mutex_) {
                                             return !journal_queue_.empty() ||
                                                    journal_stop_;
                                           });
      if (journal_queue_.empty()) return;  // stop requested, fully drained
      // Swap out everything queued since the last wake: one park/wake
      // cycle amortizes over the whole burst instead of costing a
      // context switch per event.
      batch.swap(journal_queue_);
      journal_busy_ = true;
    }
    // File I/O runs with no lock held: shards keep applying revisions
    // while these encodes + appends (and any fsync the cadence
    // schedules) are in flight. This thread never takes mutex_, so the
    // lock order stays mutex_ -> journal_mutex_, acyclic.
    for (const JournalRecord& record : batch) {
      if (!journal_enabled_.load(std::memory_order_acquire)) break;
      if (!journal_.append(record)) {
        // relaxed: statistics counter; surfaced via stats() only.
        journal_write_failures_.fetch_add(1, std::memory_order_relaxed);
        journal_enabled_.store(false, std::memory_order_release);
      }
    }
    batch.clear();
  }
}

void ShardedPipeline::flush_journal() {
  {
    common::MutexLock lock(journal_mutex_);
    journal_cv_.wait(journal_mutex_, [this]()
                                         REPRO_REQUIRES(journal_mutex_) {
                                           return journal_queue_.empty() &&
                                                  !journal_busy_;
                                         });
  }
  // The writer is parked inside its wait (queue empty, not busy), and
  // releasing journal_mutex_ after its last append gives us a
  // happens-before edge on the file state — safe to touch journal_
  // from this thread.
  if (journal_enabled_.load(std::memory_order_acquire) &&
      !journal_.sync()) {
    // relaxed: statistics counter; surfaced via stats() only.
    journal_write_failures_.fetch_add(1, std::memory_order_relaxed);
    journal_enabled_.store(false, std::memory_order_release);
  }
}

bool ShardedPipeline::checkpoint_locked() {
  try {
    engine::save_checkpoint(options_.durability.checkpoint_path,
                            *engine_.snapshot(), next_seq_);
  } catch (const Error&) {
    // atomic_write_file failed before the rename: the previous
    // checkpoint file is intact. Counted with the journal failures —
    // one counter covers every durability write path.
    ++journal_write_failures_;
    return false;
  }
  ++checkpoints_;
  events_since_checkpoint_ = 0;
  return true;
}

bool ShardedPipeline::checkpoint() {
  if (options_.durability.checkpoint_path.empty()) return false;
  common::MutexLock lock(mutex_);
  return checkpoint_locked();
}

void ShardedPipeline::finish() {
  drain_rings();
  {
    common::MutexLock lock(mutex_);
    // Flush merge groups still parked behind the watermark — a lane
    // that went idle (or never spoke) holds the frontier back forever.
    // Map order keeps the flush in (seq, die) order.
    while (!pending_.empty()) {
      const std::uint64_t seq = pending_.begin()->first.first;
      std::vector<WindowBatch> group;
      while (!pending_.empty() && pending_.begin()->first.first == seq) {
        group.push_back(std::move(pending_.begin()->second));
        pending_.erase(pending_.begin());
      }
      process_group_locked(std::move(group));
    }
  }
  // Flush every builder's current phase, in slot order. Each flush
  // takes the shard lock, then the apply takes the coordinator lock —
  // sequentially, never nested, respecting the lock order.
  std::size_t count = 0;
  {
    common::MutexLock lock(mutex_);
    count = slots_.size();
  }
  for (std::size_t i = 0; i < count; ++i) {
    std::size_t shard = 0;
    {
      common::MutexLock lock(mutex_);
      shard = slots_[i]->shard;
    }
    std::optional<ProfileRevision> revision = shards_[shard]->flush_builder(i);
    if (!revision.has_value()) continue;
    common::MutexLock lock(mutex_);
    // finish() has no window timestamp; reuse the last event's (the
    // trace stays ordered).
    const Seconds t = events_.empty() ? 0.0 : events_.back().time();
    if (auto event = apply_candidate_locked(*slots_[i], std::move(*revision),
                                            t, /*solve=*/true)) {
      PipelineEvent wrapped;
      wrapped.payload = std::move(*event);
      record_event_locked(std::move(wrapped));
    }
  }
  // Make the run's tail durable regardless of the fsync cadence: after
  // finish() returns, everything the log holds survives a power cut.
  if (journal_async_) {
    flush_journal();
    return;
  }
  common::MutexLock lock(mutex_);
  if (journal_enabled_.load(std::memory_order_acquire) &&
      !journal_.sync()) {
    // relaxed: statistics counter; surfaced via stats() only.
    journal_write_failures_.fetch_add(1, std::memory_order_relaxed);
    journal_enabled_.store(false, std::memory_order_release);
  }
}

std::deque<PipelineEvent> ShardedPipeline::events() const {
  common::MutexLock lock(mutex_);
  return events_;
}

std::vector<PipelineEvent> ShardedPipeline::events_since(
    EventCursor since) const {
  common::MutexLock lock(mutex_);
  std::vector<PipelineEvent> out;
  // Ring seqs are contiguous [next_seq_ - size, next_seq_), so the
  // first event with seq >= since sits at a computable offset.
  if (events_.empty() || since >= next_seq_) return out;
  const std::uint64_t front_seq = next_seq_ - events_.size();
  const std::uint64_t start = since > front_seq ? since - front_seq : 0;
  out.reserve(events_.size() - static_cast<std::size_t>(start));
  for (std::size_t i = static_cast<std::size_t>(start); i < events_.size();
       ++i)
    out.push_back(events_[i]);
  return out;
}

PipelineStats ShardedPipeline::stats_locked() const {
  PipelineStats s;
  // `windows` counts raw ingested windows whether or not they survived
  // sanitization, so it stays monotonic and comparable across modes.
  // In ring mode it counts *ingested* windows: ones dropped by kDrop
  // backpressure never entered the chain and show up only in
  // health.windows_dropped.
  s.windows = windows_seen_;
  s.revisions = revisions_;
  s.resolves = resolves_;
  s.coalesced_resolves = coalesced_resolves_;
  s.solver_iterations = solver_iterations_;
  s.phase_changes = phase_changes_;
  s.frequency_steps = frequency_steps_;
  s.power_revisions = power_revisions_;
  s.power_rejected = power_rejected_;
  s.health.windows_seen = windows_seen_;
  s.health.windows_forwarded = windows_forwarded_;
  s.health.windows_repaired = windows_repaired_;
  s.health.windows_quarantined = q_order_ + q_implausible_ + q_outlier_;
  // relaxed: statistics snapshot; the counters below need not be
  // mutually consistent and order nothing.
  s.health.windows_dropped = dropped_.load(std::memory_order_relaxed);
  s.health.revisions_rejected = revisions_rejected_;
  s.health.degraded_resolves = degraded_resolves_;
  s.health.history_evicted = history_evicted_;
  s.journaled_events = journaled_events_;
  s.checkpoints = checkpoints_;
  s.health.stalls_detected =
      stalls_detected_.load(std::memory_order_relaxed);  // relaxed: ditto
  s.health.shard_restarts =
      shard_restarts_.load(std::memory_order_relaxed);  // relaxed: ditto
  s.health.shards_failed =
      shards_failed_.load(std::memory_order_relaxed);  // relaxed: ditto
  s.health.recovery_truncated_frames = recovery_.journal.truncated_frames;
  s.health.journal_write_failures =
      journal_write_failures_.load(
          std::memory_order_relaxed);  // relaxed: ditto
  return s;
}

PipelineSnapshot ShardedPipeline::snapshot() const {
  common::MutexLock lock(mutex_);
  PipelineSnapshot s;
  s.stats = stats_locked();
  if (options_.harden) {
    // Aggregate of every per-die sanitizer, reconstructed from the
    // batch verdicts the shards reported (identical counters — each
    // sanitize() call bumps exactly one verdict).
    s.sanitizer.windows = windows_seen_;
    s.sanitizer.forwarded = windows_forwarded_;
    s.sanitizer.repaired = windows_repaired_;
    s.sanitizer.quarantined = q_order_ + q_implausible_ + q_outlier_;
    s.sanitizer.quarantined_order = q_order_;
    s.sanitizer.quarantined_implausible = q_implausible_;
    s.sanitizer.quarantined_outlier = q_outlier_;
  }
  s.latest = latest_;
  s.next_cursor = next_seq_;
  return s;
}

std::vector<QuarantineRecord> ShardedPipeline::quarantined() const {
  std::vector<QuarantineRecord> all;
  for (const auto& shard : shards_) {
    std::vector<QuarantineRecord> records = shard->quarantined();
    all.insert(all.end(), std::make_move_iterator(records.begin()),
               std::make_move_iterator(records.end()));
  }
  std::sort(all.begin(), all.end(),
            [](const QuarantineRecord& a, const QuarantineRecord& b) {
              return std::tie(a.seq, a.die) < std::tie(b.seq, b.die);
            });
  return all;
}

}  // namespace repro::online
