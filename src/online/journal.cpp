#include "repro/online/journal.hpp"

#include <charconv>
#include <limits>
#include <sstream>
#include <utility>

#include "repro/common/crc32c.hpp"
#include "repro/common/ensure.hpp"
#include "repro/core/serialize.hpp"
#include "repro/engine/checkpoint.hpp"

namespace repro::online {

namespace {

void append_u32le(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFFu));
  out.push_back(static_cast<char>((v >> 8) & 0xFFu));
  out.push_back(static_cast<char>((v >> 16) & 0xFFu));
  out.push_back(static_cast<char>((v >> 24) & 0xFFu));
}

std::uint32_t read_u32le(std::string_view bytes, std::size_t pos) {
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(
        static_cast<unsigned char>(bytes[pos + i]));
  };
  return b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
}

}  // namespace

namespace {

void append_number(std::string& out, std::uint64_t v) {
  char buf[20];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void append_number(std::string& out, double v) {
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  REPRO_ENSURE(res.ec == std::errc(), "double rendering failed");
  out.append(buf, res.ptr);
}

}  // namespace

std::string encode_record(const JournalRecord& record) {
  REPRO_ENSURE(record.profile.has_value() != record.power.has_value(),
               "journal record needs exactly one payload");
  std::string out;
  if (record.is_profile()) {
    out += "profile ";
    append_number(out, record.seq);
    out += ' ';
    append_number(out, record.time);
    out += ' ';
    append_number(out, static_cast<std::uint64_t>(record.handle));
    out += ' ';
    append_number(out, record.revision);
    out += '\n';
    core::append_profile(out, *record.profile);
  } else {
    out += "power ";
    append_number(out, record.seq);
    out += ' ';
    append_number(out, record.time);
    out += ' ';
    append_number(out, record.revision);
    out += '\n';
    core::append_power_model(out, *record.power);
  }
  return out;
}

std::string frame_payload(std::string_view payload) {
  REPRO_ENSURE(!payload.empty() && payload.size() <= kMaxFramePayload,
               "journal payload size out of range");
  std::string out;
  out.reserve(8 + payload.size());
  append_u32le(out, static_cast<std::uint32_t>(payload.size()));
  append_u32le(out, common::crc32c(payload));
  out.append(payload);
  return out;
}

std::optional<JournalRecord> decode_record(std::string_view payload,
                                           std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  const std::size_t newline = payload.find('\n');
  if (newline == std::string_view::npos)
    return fail("record has no header line");
  const std::string header(payload.substr(0, newline));
  const std::string body(payload.substr(newline + 1));

  JournalRecord record;
  std::istringstream hs(header);
  std::string kind;
  hs >> kind;
  const bool is_profile = kind == "profile";
  if (is_profile)
    hs >> record.seq >> record.time >> record.handle >> record.revision;
  else if (kind == "power")
    hs >> record.seq >> record.time >> record.revision;
  else
    return fail("unknown record kind: " + kind);
  std::string trailing;
  if (hs.fail() || (hs >> trailing))
    return fail("bad record header: " + header);

  // The body is plain store format; read_store's own validation (and
  // its "store line N:" messages) covers every field-level defect.
  core::ModelStore store;
  try {
    std::istringstream bs(body);
    store = core::read_store(bs);
  } catch (const Error& e) {
    return fail(e.what());
  }
  if (is_profile) {
    if (store.profiles.size() != 1 || store.power_model.has_value())
      return fail("profile record body must hold exactly one profile");
    record.profile = std::move(store.profiles.front());
  } else {
    if (!store.profiles.empty() || !store.power_model.has_value())
      return fail("power record body must hold exactly one power_model");
    record.power = std::move(store.power_model);
  }
  return record;
}

bool JournalWriter::open(const std::string& path,
                         const JournalOptions& options,
                         std::uint64_t keep_bytes) {
  options_ = options;
  error_.clear();
  unsynced_ = 0;
  file_ = common::DurableFile::open_append(path);
  if (!file_.ok()) {
    error_ = file_.error();
    return false;
  }
  bool prepared;
  if (keep_bytes == 0) {
    // Fresh journal: drop whatever was there and lay down the header.
    prepared = file_.truncate(0) &&
               file_.write_all(kJournalHeader.data(), kJournalHeader.size()) &&
               file_.sync();
  } else {
    // Resume: cut the torn/corrupt tail recovery identified, then make
    // the cut durable before any new frame lands after it.
    const std::optional<std::uint64_t> current = file_.size();
    if (!current.has_value()) {
      error_ = "stat " + path + " failed";
      return false;
    }
    prepared = *current == keep_bytes ||
               (file_.truncate(keep_bytes) && file_.sync());
  }
  if (!prepared) error_ = file_.error();
  return prepared;
}

bool JournalWriter::append(const JournalRecord& record) {
  if (!ok()) return false;
  const std::string framed = frame_payload(encode_record(record));
  if (!file_.write_all(framed.data(), framed.size())) {
    error_ = file_.error();
    return false;
  }
  ++appended_;
  bool synced = true;
  switch (options_.fsync) {
    case JournalFsync::kOff:
      break;
    case JournalFsync::kOnRevision:
      synced = file_.sync_data();
      break;
    case JournalFsync::kEveryN:
      if (++unsynced_ >= options_.fsync_every) {
        synced = file_.sync_data();
        unsynced_ = 0;
      }
      break;
  }
  if (!synced) error_ = file_.error();
  return synced;
}

bool JournalWriter::sync() {
  if (!ok()) return false;
  unsynced_ = 0;
  if (!file_.sync_data()) {
    error_ = file_.error();
    return false;
  }
  return true;
}

JournalRecovery scan_journal(const std::string& path) {
  JournalRecovery out;
  std::optional<std::string> text;
  try {
    text = common::read_file(path);
  } catch (const Error& e) {
    out.found = true;
    out.error = e.what();
    return out;
  }
  if (!text.has_value()) return out;  // no file: nothing to recover
  out.found = true;
  const std::string_view bytes = *text;

  if (bytes.size() < kJournalHeader.size() ||
      bytes.substr(0, kJournalHeader.size()) != kJournalHeader) {
    // A broken header poisons the whole file — frame boundaries can't
    // be trusted without it.
    out.error = "journal header: not a repro-journal v1 file";
    out.dropped_bytes = bytes.size();
    out.truncated_frames = out.dropped_bytes > 0 ? 1 : 0;
    return out;
  }

  std::size_t pos = kJournalHeader.size();
  out.valid_bytes = pos;
  std::size_t frame = 0;
  std::string why;
  while (pos < bytes.size()) {
    ++frame;
    const std::size_t remain = bytes.size() - pos;
    if (remain < 8) {
      why = "torn frame header (" + std::to_string(remain) + " of 8 bytes)";
      break;
    }
    const std::uint32_t length = read_u32le(bytes, pos);
    const std::uint32_t stored_crc = read_u32le(bytes, pos + 4);
    if (length == 0 || length > kMaxFramePayload) {
      why = "implausible frame length " + std::to_string(length);
      break;
    }
    if (remain - 8 < length) {
      why = "torn payload (" + std::to_string(remain - 8) + " of " +
            std::to_string(length) + " bytes)";
      break;
    }
    const std::string_view payload = bytes.substr(pos + 8, length);
    const std::uint32_t computed = common::crc32c(payload);
    if (computed != stored_crc) {
      std::ostringstream mismatch;
      mismatch << "payload checksum mismatch (stored " << std::hex
               << stored_crc << ", computed " << computed << ")";
      why = std::move(mismatch).str();
      break;
    }
    std::string decode_error;
    std::optional<JournalRecord> record = decode_record(payload,
                                                        &decode_error);
    if (!record.has_value()) {
      why = decode_error;
      break;
    }
    out.records.push_back(std::move(*record));
    pos += 8 + length;
    out.valid_bytes = pos;
    out.frame_ends.push_back(pos);
  }
  if (!why.empty())
    out.error = "journal frame " + std::to_string(frame) + ": " + why;
  out.dropped_bytes = bytes.size() - out.valid_bytes;
  out.truncated_frames = out.dropped_bytes > 0 ? 1 : 0;
  return out;
}

RecoveryReport recover_engine(engine::ModelEngine& engine,
                              const std::string& checkpoint_path,
                              const std::string& journal_path) {
  RecoveryReport report;

  if (!checkpoint_path.empty()) {
    try {
      const std::optional<core::Checkpoint> checkpoint =
          engine::load_checkpoint(checkpoint_path);
      if (checkpoint.has_value()) {
        // restore() validates before mutating: a refusal below leaves
        // the fresh engine untouched and we fall through to a full
        // journal replay from seq 0.
        engine::restore_checkpoint(engine, *checkpoint);
        report.checkpoint_found = true;
        report.checkpoint_epoch = checkpoint->meta.epoch;
        report.journal_next = checkpoint->meta.journal_next;
      }
    } catch (const Error& e) {
      report.checkpoint_error = e.what();
      report.journal_next = 0;
    }
  }
  report.next_seq = report.journal_next;

  if (journal_path.empty()) return report;
  report.journal = scan_journal(journal_path);
  if (!report.journal.found) return report;
  report.durable_bytes = kJournalHeader.size();

  std::uint64_t last_seq = 0;
  bool have_last = false;
  for (std::size_t i = 0; i < report.journal.records.size(); ++i) {
    const JournalRecord& record = report.journal.records[i];
    const auto fail = [&](const std::string& why) {
      report.replay_error =
          "journal replay seq " + std::to_string(record.seq) + ": " + why;
    };
    if (have_last && record.seq <= last_seq) {
      fail("sequence went backwards (after " + std::to_string(last_seq) +
           ")");
      break;
    }
    last_seq = record.seq;
    have_last = true;

    if (record.seq < report.journal_next) {
      // Already folded into the checkpoint.
      ++report.skipped;
      report.durable_bytes = report.journal.frame_ends[i];
      continue;
    }
    if (record.is_profile()) {
      const std::optional<engine::ProcessHandle> existing =
          engine.snapshot()->find(record.profile->name);
      engine::ProcessHandle handle = 0;
      if (existing.has_value()) {
        handle = *existing;
        const engine::ApplyResult result = engine.try_apply(
            engine::Revision::process(handle, *record.profile));
        if (!result) {
          fail("engine refused the revision: " + result.reason);
          break;
        }
      } else {
        // Cold start in the original run: the registration itself was
        // the journaled event.
        try {
          handle = engine.register_process(*record.profile);
        } catch (const Error& e) {
          fail(std::string("registration failed: ") + e.what());
          break;
        }
      }
      if (handle != record.handle) {
        fail("handle mismatch: journaled " + std::to_string(record.handle) +
             ", engine assigned " + std::to_string(handle));
        break;
      }
      if (engine.profile(handle).revision != record.revision) {
        fail("profile revision mismatch: journaled " +
             std::to_string(record.revision) + ", engine at " +
             std::to_string(engine.profile(handle).revision));
        break;
      }
    } else {
      const engine::ApplyResult result =
          engine.try_apply(engine::Revision::power_model(*record.power));
      if (!result) {
        fail("engine refused the power revision: " + result.reason);
        break;
      }
      if (engine.power_revision() != record.revision) {
        fail("power revision mismatch: journaled " +
             std::to_string(record.revision) + ", engine at " +
             std::to_string(engine.power_revision()));
        break;
      }
    }
    ++report.replayed;
    report.next_seq = record.seq + 1;
    report.durable_bytes = report.journal.frame_ends[i];
  }
  return report;
}

}  // namespace repro::online
