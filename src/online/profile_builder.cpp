#include "repro/online/profile_builder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "repro/common/ensure.hpp"
#include "repro/core/reuse_histogram.hpp"

namespace repro::online {

ProfileBuilder::ProfileBuilder(std::string name, ProfileBuilderOptions options)
    : name_(std::move(name)), options_(options), phases_(options.phase) {
  REPRO_ENSURE(!name_.empty(), "profile builder needs a process name");
  REPRO_ENSURE(options_.ways > 0, "profile builder needs the cache ways");
  REPRO_ENSURE(options_.min_fit_windows >= 2,
               "fitting needs at least two windows");
}

void ProfileBuilder::set_baseline(const core::ProcessProfile& baseline) {
  power_alone_ = baseline.power_alone;
  base_revision_ = baseline.revision;
}

void ProfileBuilder::accumulate(const Rec& r) {
  // Express the window at the phase's reference clock: SPI and CPU
  // seconds scale by exactly f/f_ref (Eq. 3's 1/f factor — latencies
  // are fixed in cycles, so this is exact, not an approximation); the
  // event counts and MPA are frequency-free and go in untouched. The
  // equality test keeps the common single-clock stream bit-identical.
  const double scale =
      (f_ref_ > 0.0 && r.f > 0.0 && r.f != f_ref_) ? r.f / f_ref_ : 1.0;
  const double spi = r.spi * scale;
  totals_ += r.delta;
  cpu_total_ += r.cpu * scale;
  sum_x_ += r.mpa;
  sum_y_ += spi;
  sum_xx_ += r.mpa * r.mpa;
  sum_xy_ += r.mpa * spi;
  sum_yy_ += spi * spi;
}

void ProfileBuilder::restart_phase(std::size_t boundary_ordinal) {
  // Windows at or past the boundary belong to the new phase: they were
  // the candidate that just got confirmed. Rebuild the accumulators
  // from them. The comparison is in detector ordinals (Rec::ordinal),
  // which stay dense even when upstream quarantine leaves gaps in the
  // stream indices — a dropped window must not shift the boundary.
  std::vector<Rec> kept;
  for (Rec& r : recs_)
    if (r.ordinal >= boundary_ordinal) kept.push_back(std::move(r));
  recs_ = std::move(kept);
  totals_ = hpc::Counters{};
  cpu_total_ = 0.0;
  sum_x_ = sum_y_ = sum_xx_ = sum_xy_ = sum_yy_ = 0.0;
  // The new phase pins its own reference clock; the kept windows are
  // re-expressed against it.
  f_ref_ = recs_.empty() ? 0.0 : recs_.front().f;
  for (const Rec& r : recs_) accumulate(r);
  since_emit_ = 0;
}

std::optional<ProfileRevision> ProfileBuilder::push(
    const WindowObservation& obs) {
  ++windows_;
  ++since_emit_;

  // Every window feeds the phase signal, usable or not: an idle window
  // reports MPA 0, which genuinely is a behaviour change.
  const std::optional<core::Phase> ended = phases_.push(obs.mpa());

  const bool usable = obs.delta.instructions > 0.0 &&
                      obs.delta.l2_refs > 0.0 && obs.cpu_time > 0.0;
  if (usable) {
    Rec r;
    r.ordinal = windows_ - 1;  // == the detector index of this window
    r.s = std::clamp(static_cast<double>(obs.occupancy), 0.0,
                     static_cast<double>(options_.ways));
    r.mpa = obs.mpa();
    r.spi = obs.spi();
    r.delta = obs.delta;
    r.cpu = obs.cpu_time;
    r.f = obs.frequency;
    if (recs_.empty()) f_ref_ = r.f;  // first usable window pins the clock
    if (last_f_ > 0.0 && r.f > 0.0 && r.f != last_f_) ++frequency_steps_;
    last_f_ = r.f;
    recs_.push_back(r);
    accumulate(r);
  }

  if (ended.has_value()) {
    restart_phase(phases_.current_begin());
    return fit();  // first revision of the new phase, if already fittable
  }
  if (options_.refit_interval > 0 && since_emit_ >= options_.refit_interval)
    return fit();
  return std::nullopt;
}

std::optional<ProfileRevision> ProfileBuilder::finish() {
  return fit();
}

std::optional<ProfileRevision> ProfileBuilder::fit() {
  if (recs_.size() < options_.min_fit_windows) return std::nullopt;
  if (totals_.instructions <= 0.0 || totals_.l2_refs <= 0.0 ||
      cpu_total_ <= 0.0)
    return std::nullopt;

  core::ProcessProfile p;
  p.name = name_;
  p.alone = hpc::PerInstructionRates::from(totals_, cpu_total_);
  p.power_alone = power_alone_;

  // Resample the phase's (occupancy, MPA) cloud onto the integer grid;
  // Eq. 8 differences it into the histogram.
  std::vector<double> s_points, mpa_points;
  s_points.reserve(recs_.size());
  mpa_points.reserve(recs_.size());
  for (const Rec& r : recs_) {
    s_points.push_back(r.s);
    mpa_points.push_back(r.mpa);
  }
  p.mpa_at_ways = core::resample_mpa_curve(s_points, mpa_points,
                                           options_.ways);

  // Eq. 3 by incremental least squares over (MPA, SPI); a degenerate
  // spread (constant MPA) or a non-physical fit falls back to the
  // phase-mean SPI, exactly like the batch profiler's guard.
  const double n = static_cast<double>(recs_.size());
  const double var = sum_xx_ - sum_x_ * sum_x_ / n;
  double alpha = 0.0;
  double beta = sum_y_ / n;
  if (var > 1e-12) {
    alpha = (sum_xy_ - sum_x_ * sum_y_ / n) / var;
    beta = (sum_y_ - alpha * sum_x_) / n;
  }
  // SPI must not decrease with MPA (and the store format rejects
  // negative alpha on load); a noise-driven negative slope falls back
  // to the phase-mean SPI, exactly like the batch profiler's guard.
  if (beta <= 0.0 || alpha < 0.0) {
    alpha = 0.0;
    beta = sum_y_ / n;
  }
  if (beta <= 0.0) return std::nullopt;  // pathological phase; wait

  p.features.name = name_;
  p.features.histogram = core::ReuseHistogram::from_mpa_curve(p.mpa_at_ways);
  p.features.api = totals_.l2_refs / totals_.instructions;
  p.features.alpha = alpha;
  p.features.beta = beta;
  // α and β above are expressed at the phase's reference clock (every
  // window was normalized to it); record that clock so the engine can
  // rescale the revision to any what-if frequency. 0 = the stream had
  // no frequency telemetry, and the profile is legacy-shaped.
  p.features.fit_frequency = f_ref_;
  p.features.validate();

  p.spi_at_ways.resize(options_.ways);
  for (std::uint32_t s = 1; s <= options_.ways; ++s)
    p.spi_at_ways[s - 1] = alpha * p.mpa_at_ways[s - 1] + beta;

  p.revision = base_revision_ + ++revisions_;
  since_emit_ = 0;

  ProfileRevision rev;
  rev.profile = std::move(p);
  rev.quality.windows = recs_.size();
  // Residual of the line actually emitted (incl. the fallback): SSE =
  // Σ(y − αx − β)² expanded in the running sums, relative to mean SPI.
  const double sse = sum_yy_ - 2.0 * alpha * sum_xy_ - 2.0 * beta * sum_y_ +
                     alpha * alpha * sum_xx_ + 2.0 * alpha * beta * sum_x_ +
                     n * beta * beta;
  const double mean_spi = sum_y_ / n;
  rev.quality.fit_rms = std::sqrt(std::max(sse, 0.0) / n) / mean_spi;
  rev.quality.histogram_mass =
      1.0 - rev.profile.features.histogram.tail_mass();
  return rev;
}

}  // namespace repro::online
