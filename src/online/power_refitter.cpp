#include "repro/online/power_refitter.hpp"

#include <cmath>
#include <utility>

#include "repro/common/ensure.hpp"
#include "repro/math/stats.hpp"

namespace repro::online {

PowerRefitter::PowerRefitter(std::uint32_t cores, PowerRefitOptions options)
    : cores_(cores),
      options_(options),
      fitter_(5, {.window = options.window}) {
  REPRO_ENSURE(cores_ > 0, "refitter needs at least one core");
  REPRO_ENSURE(options_.refit_interval > 0, "refit interval must be positive");
  REPRO_ENSURE(options_.power_floor > 0.0, "power floor must be positive");
  REPRO_ENSURE(options_.min_fit_windows >= 7,
               "need at least regressors + 2 windows per fit");
}

double PowerRefitter::window_error_pct(Watts idle,
                                       std::span<const double> c) const {
  // Eq. 9 is linear, so evaluating on rates summed over cores equals
  // the per-core sum the PowerModel API computes.
  double sum = 0.0;
  for (const math::IncrementalMvlr::Row& row : fitter_.rows()) {
    const double pred = idle + math::dot(c, row.x);
    sum += math::relative_error_floored(pred, row.y, options_.power_floor);
  }
  return 100.0 * sum / static_cast<double>(fitter_.rows().size());
}

std::optional<PowerRefitAttempt> PowerRefitter::push(
    const sim::Sample& sample, const core::PowerModel& incumbent) {
  if (!options_.enabled) return std::nullopt;

  // Ground truth required: the clamp measurement must be a real,
  // positive wattage and the rates must be finite, or the window is
  // unusable for fitting (it still flows to the performance path).
  if (!std::isfinite(sample.measured_power) || sample.measured_power <= 0.0) {
    ++skipped_;
    return std::nullopt;
  }
  hpc::EventRates total;
  for (const hpc::EventRates& r : sample.core_rates) total += r;
  const std::array<double, 5> x = total.regressors();
  for (double v : x) {
    if (!std::isfinite(v)) {
      ++skipped_;
      return std::nullopt;
    }
  }

  fitter_.push(x, sample.measured_power);
  ++since_attempt_;
  if (fitter_.size() < options_.min_fit_windows ||
      since_attempt_ < options_.refit_interval)
    return std::nullopt;
  since_attempt_ = 0;

  PowerRefitAttempt attempt;
  attempt.time = sample.time;
  attempt.window_samples = fitter_.size();

  const std::optional<math::Mvlr::Fit> fit = fitter_.try_fit();
  if (!fit.has_value()) {
    attempt.rank_deficient = true;
    attempt.reason = "rank-deficient window (constant or collinear rates)";
    return attempt;
  }
  attempt.fit = *fit;
  attempt.candidate_err_pct =
      window_error_pct(fit->intercept, fit->coefficients);
  attempt.incumbent_err_pct =
      window_error_pct(incumbent.idle_total(), incumbent.coefficients());

  if (!(fit->intercept > 0.0)) {
    attempt.reason = "non-positive fitted idle power";
    return attempt;
  }
  if (fit->r2 < options_.min_r2) {
    attempt.reason = "fit R2 below the quality gate";
    return attempt;
  }
  if (attempt.candidate_err_pct >
      options_.max_error_ratio * attempt.incumbent_err_pct) {
    attempt.reason = "no improvement over the incumbent model";
    return attempt;
  }

  std::array<double, 5> c{};
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = fit->coefficients[i];
  attempt.accepted = true;
  attempt.model.emplace(fit->intercept, c, cores_);
  return attempt;
}

}  // namespace repro::online
