#include "repro/online/pipeline.hpp"

#include <atomic>
#include <utility>

#include "repro/common/ensure.hpp"

namespace repro::online {

OnlinePipeline::OnlinePipeline(engine::ModelEngine& engine,
                               OnlinePipelineOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.builder.ways == 0) options_.builder.ways = engine_.ways();
  REPRO_ENSURE(options_.builder.ways == engine_.ways(),
               "builder grid must match the engine's cache ways");
  {
    common::MutexLock lock(mutex_);
    if (options_.harden) {
      if (options_.sanitizer.ways == 0)
        options_.sanitizer.ways = engine_.ways();
      sanitizer_.emplace(options_.sanitizer);
    }
    if (options_.power.enabled)
      refitter_.emplace(engine_.machine().cores, options_.power);
  }
  if (!options_.inline_ingest) {
    ring_ = std::make_unique<common::SpscRing<sim::Sample>>(
        options_.ring_capacity);
    worker_ = std::thread(&OnlinePipeline::worker_loop, this);
  }
}

OnlinePipeline::~OnlinePipeline() {
  if (worker_.joinable()) {
    stop_.store(true, std::memory_order_release);
    // Same two-fence handshake as enqueue(): either the worker's
    // park-time re-check sees stop_, or we see it parked and wake it.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    {
      common::MutexLock lock(ring_mutex_);
      ring_cv_.notify_one();
    }
    worker_.join();  // drains the ring before exiting
  }
}

void OnlinePipeline::monitor(ProcessId pid,
                             engine::ProcessHandle handle) {
  // The baseline comes from the engine's current snapshot — a
  // lock-free read, so no lock-order interaction with mutex_.
  const core::ProcessProfile baseline = engine_.profile(handle);
  auto m = std::make_unique<Monitored>();
  m->pid = pid;
  m->name = baseline.name;
  m->handle = handle;
  m->builder = std::make_unique<ProfileBuilder>(baseline.name,
                                                options_.builder);
  m->builder->set_baseline(baseline);
  common::MutexLock lock(mutex_);
  Monitored* raw = m.get();
  monitored_.push_back(std::move(m));
  stream_.attach(
      pid, [this, raw](const WindowObservation& obs) REPRO_REQUIRES(mutex_) {
        if (auto revision = raw->builder->push(obs))
          apply_revision(*raw, std::move(*revision), obs.time);
      });
}

void OnlinePipeline::monitor(ProcessId pid, std::string name) {
  auto m = std::make_unique<Monitored>();
  m->pid = pid;
  m->name = name;
  m->builder = std::make_unique<ProfileBuilder>(std::move(name),
                                                options_.builder);
  common::MutexLock lock(mutex_);
  Monitored* raw = m.get();
  monitored_.push_back(std::move(m));
  stream_.attach(
      pid, [this, raw](const WindowObservation& obs) REPRO_REQUIRES(mutex_) {
        if (auto revision = raw->builder->push(obs))
          apply_revision(*raw, std::move(*revision), obs.time);
      });
}

std::optional<engine::ProcessHandle> OnlinePipeline::handle_of(
    ProcessId pid) const {
  common::MutexLock lock(mutex_);
  for (const auto& m : monitored_)
    if (m->pid == pid) return m->handle;
  return std::nullopt;
}

void OnlinePipeline::set_query(engine::CoScheduleQuery query) {
  common::MutexLock lock(mutex_);
  query_ = std::move(query);
  latest_.reset();  // stale seeds would belong to the previous query
}

void OnlinePipeline::push(const sim::Sample& sample) {
  if (ring_ == nullptr) {
    // inline_ingest: the whole chain runs here, on the caller's
    // thread — bit-identical to the pre-ring pipeline.
    common::MutexLock lock(mutex_);
    ingest(sample);
    return;
  }
  enqueue(sample);
}

void OnlinePipeline::enqueue(const sim::Sample& sample) {
  sim::Sample window = sample;
  if (!ring_->try_push(window)) {
    if (options_.backpressure ==
        OnlinePipelineOptions::Backpressure::kDrop) {
      // Count-and-drop: the producer never waits; the hole is
      // surfaced through PipelineHealth::windows_dropped.
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    // kBlock: register as a drain waiter, fence, then re-try — the
    // worker's symmetric fence-then-check after each pop guarantees
    // that either our retry sees the freed slot or the worker sees
    // our registration and notifies (no lost wakeup).
    common::MutexLock lock(ring_mutex_);
    drain_waiters_.fetch_add(1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    while (!ring_->try_push(window)) drain_cv_.wait(ring_mutex_);
    drain_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
  enqueued_.fetch_add(1, std::memory_order_release);
  // Wake the worker if it parked on an empty ring: publish (the push
  // above), fence, check the parked flag. Either the worker's
  // park-time empty re-check sees our element, or we see its flag —
  // losing the wakeup would need both to fail.
  std::atomic_thread_fence(std::memory_order_seq_cst);
  if (worker_parked_.load(std::memory_order_relaxed)) {
    common::MutexLock lock(ring_mutex_);
    ring_cv_.notify_one();
  }
}

void OnlinePipeline::worker_loop() {
  for (;;) {
    sim::Sample window;
    if (ring_->try_pop(window)) {
      {
        common::MutexLock lock(mutex_);
        ingest(window);
      }
      drained_.fetch_add(1, std::memory_order_release);
      // Wake a kBlock producer waiting for a slot or a drain_ring()
      // waiter — same fence-then-check as the producer side.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (drain_waiters_.load(std::memory_order_relaxed) > 0) {
        common::MutexLock lock(ring_mutex_);
        drain_cv_.notify_all();
      }
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;  // ring drained
    // Park: publish the flag, fence, re-check the ring and stop_ while
    // holding ring_mutex_ (the producer notifies under it, so a wakeup
    // posted after our re-check cannot slip past the wait).
    common::MutexLock lock(ring_mutex_);
    worker_parked_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (ring_->empty() && !stop_.load(std::memory_order_relaxed))
      ring_cv_.wait(ring_mutex_);
    worker_parked_.store(false, std::memory_order_relaxed);
  }
}

void OnlinePipeline::drain_ring() {
  if (ring_ == nullptr) return;
  // Wait until the worker has ingested everything enqueued before this
  // call. Windows pushed concurrently with the drain are not covered —
  // callers (finish, tests) drain after the producer has stopped.
  const std::uint64_t target = enqueued_.load(std::memory_order_acquire);
  common::MutexLock lock(ring_mutex_);
  drain_waiters_.fetch_add(1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  while (drained_.load(std::memory_order_acquire) < target)
    drain_cv_.wait(ring_mutex_);
  drain_waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void OnlinePipeline::ingest(const sim::Sample& sample) {
  if (!sanitizer_.has_value()) {
    stream_.push(sample);
    refit_power(sample);
    return;
  }
  // Quarantined windows reach neither the performance stream nor the
  // power refitter — the refit consumes the same hardened window path.
  sim::Sample clean;
  if (sanitizer_->sanitize(sample, &clean)) {
    stream_.push(clean);
    refit_power(clean);
  }
}

void OnlinePipeline::refit_power(const sim::Sample& sample) {
  if (!refitter_.has_value()) return;
  // Refits revise an existing calibration; a performance-only engine
  // has nothing to revise. Both reads resolve against the engine's
  // current snapshot — lock-free, no lock-order interaction.
  if (!engine_.has_power_model()) return;
  const core::PowerModel incumbent = engine_.power_model();
  std::optional<PowerRefitAttempt> attempt =
      refitter_->push(sample, incumbent);
  if (!attempt.has_value()) return;

  PowerRevisionEvent event;
  event.time = attempt->time;
  event.reason = attempt->reason;
  event.rank_deficient = attempt->rank_deficient;
  event.r2 = attempt->fit.r2;
  event.accuracy = attempt->fit.accuracy;
  event.candidate_err_pct = attempt->candidate_err_pct;
  event.incumbent_err_pct = attempt->incumbent_err_pct;
  event.window_samples = attempt->window_samples;
  if (attempt->accepted) {
    event.idle = attempt->model->idle_total();
    event.coefficients = attempt->model->coefficients();
    // Validate-before-mutate: a refusal leaves last-good installed
    // (and published) and carries the engine's reason into the event.
    const engine::ApplyResult applied =
        engine_.try_apply(engine::Revision::power_model(*attempt->model));
    if (applied.applied) {
      event.applied = true;
      event.revision = engine_.power_revision();
      ++power_revisions_;
    } else {
      event.reason = applied.reason;
      ++power_rejected_;
    }
  } else {
    if (!attempt->rank_deficient) {
      event.idle = attempt->fit.intercept;
      for (std::size_t i = 0; i < event.coefficients.size(); ++i)
        event.coefficients[i] = attempt->fit.coefficients[i];
    }
    ++power_rejected_;
  }
  PipelineEvent wrapped;
  wrapped.payload = std::move(event);
  record_event(std::move(wrapped));
}

void OnlinePipeline::record_event(PipelineEvent event) {
  event.seq = next_seq_++;
  events_.push_back(std::move(event));
  if (options_.history_capacity > 0 &&
      events_.size() > options_.history_capacity) {
    events_.pop_front();
    ++history_evicted_;
  }
}

void OnlinePipeline::finish() {
  drain_ring();
  common::MutexLock lock(mutex_);
  for (auto& m : monitored_) {
    if (auto revision = m->builder->finish()) {
      // finish() has no window timestamp; reuse the last event's (the
      // trace stays ordered).
      const Seconds t = events_.empty() ? 0.0 : events_.back().time();
      apply_revision(*m, std::move(*revision), t);
    }
  }
}

std::deque<PipelineEvent> OnlinePipeline::events() const {
  common::MutexLock lock(mutex_);
  return events_;
}

std::vector<PipelineEvent> OnlinePipeline::events_since(
    EventCursor since) const {
  common::MutexLock lock(mutex_);
  std::vector<PipelineEvent> out;
  // Ring seqs are contiguous [next_seq_ - size, next_seq_), so the
  // first event with seq >= since sits at a computable offset.
  if (events_.empty() || since >= next_seq_) return out;
  const std::uint64_t front_seq = next_seq_ - events_.size();
  const std::uint64_t start = since > front_seq ? since - front_seq : 0;
  out.reserve(events_.size() - static_cast<std::size_t>(start));
  for (std::size_t i = static_cast<std::size_t>(start); i < events_.size();
       ++i)
    out.push_back(events_[i]);
  return out;
}

std::vector<double> OnlinePipeline::warm_seeds() const {
  if (!latest_.has_value()) return {};
  // Regroup the previous operating points per core (predict preserves
  // slot order within a core), then flatten in (core, slot) order —
  // the CoScheduleQuery::warm_start convention.
  std::vector<std::vector<double>> per_core(engine_.machine().cores);
  for (const engine::ProcessOperatingPoint& pt : latest_->processes)
    per_core[pt.core].push_back(pt.prediction.effective_size);
  std::vector<double> seeds;
  for (CoreId c = 0; c < engine_.machine().cores; ++c) {
    if (per_core[c].size() != query_->assignment.per_core[c].size())
      return {};  // query changed shape since the last solve: cold
    for (double s : per_core[c]) seeds.push_back(s);
  }
  return seeds;
}

void OnlinePipeline::apply_revision(Monitored& m, ProfileRevision revision,
                                    Seconds time) {
  // Degradation gate 1: a revision whose Eq. 3 fit barely explains its
  // own windows (mixed phases, residual corruption) must not replace a
  // working profile. Skipped while the process has no profile at all —
  // any model beats none for cold start.
  if (options_.harden && m.handle.has_value() && options_.max_fit_rms > 0.0 &&
      !(revision.quality.fit_rms <= options_.max_fit_rms)) {
    ++revisions_rejected_;
    return;
  }

  // Degradation gate 2: validation. try_apply/register_process
  // validate before touching the registry, so a refusal here leaves the
  // engine's registry and memoized artifacts exactly as they were.
  if (m.handle.has_value()) {
    const engine::ApplyResult applied = engine_.try_apply(
        engine::Revision::process(*m.handle, std::move(revision.profile)));
    if (!applied.applied) {
      // The unhardened pipeline (the chaos bench's control arm)
      // propagates the validation error out of sink(); the hardened
      // one degrades to last-good and counts the rejection.
      REPRO_ENSURE(options_.harden, "revision rejected: " + applied.reason);
      ++revisions_rejected_;
      return;
    }
  } else if (options_.harden) {
    try {
      m.handle = engine_.register_process(std::move(revision.profile));
    } catch (const Error&) {
      ++revisions_rejected_;
      return;
    }
  } else {
    m.handle = engine_.register_process(std::move(revision.profile));
  }
  ++revisions_;

  RevisionEvent event;
  event.time = time;
  event.handle = *m.handle;
  event.revision = engine_.profile(*m.handle).revision;
  event.quality = revision.quality;

  if (query_.has_value()) {
    bool all_registered = true;
    for (const auto& mon : monitored_)
      if (!mon->handle.has_value()) all_registered = false;
    if (all_registered) {
      engine::CoScheduleQuery q = *query_;
      q.warm_start = warm_seeds();
      try {
        engine::SystemPrediction prediction = engine_.predict(q);
        ++resolves_;
        solver_iterations_ +=
            static_cast<std::uint64_t>(prediction.solver_iterations);
        event.resolved = true;
        event.solver_iterations = prediction.solver_iterations;
        event.prediction = prediction;
        latest_ = std::move(prediction);
      } catch (const Error&) {
        // Degradation gate 3: a failed re-solve (Newton AND its
        // bisection fallback) must not escape sink(). Re-price from
        // the last-good equilibrium when there is one.
        if (!options_.harden) throw;
        ++degraded_resolves_;
        event.degraded = true;
        if (latest_.has_value()) {
          engine::SystemPrediction carried = *latest_;
          carried.degraded = true;
          carried.solver_iterations = 0;
          event.resolved = true;
          event.prediction = carried;
          latest_ = std::move(carried);
        }
      }
    }
  }
  PipelineEvent wrapped;
  wrapped.payload = std::move(event);
  record_event(std::move(wrapped));
}

OnlinePipeline::Stats OnlinePipeline::stats_locked() const {
  Stats s;
  const SanitizerStats sani =
      sanitizer_.has_value() ? sanitizer_->stats() : SanitizerStats{};
  // `windows` counts raw ingested windows whether or not they survived
  // sanitization, so it stays monotonic and comparable across modes.
  // In ring mode it counts *ingested* windows: ones dropped by kDrop
  // backpressure never entered the chain and show up only in
  // health.windows_dropped.
  s.windows = sanitizer_.has_value() ? sani.windows : stream_.windows();
  s.revisions = revisions_;
  s.resolves = resolves_;
  s.solver_iterations = solver_iterations_;
  s.power_revisions = power_revisions_;
  s.power_rejected = power_rejected_;
  for (const auto& m : monitored_) s.phase_changes += m->builder->phase_changes();
  s.health.windows_seen = s.windows;
  s.health.windows_forwarded =
      sanitizer_.has_value() ? sani.forwarded : stream_.windows();
  s.health.windows_repaired = sani.repaired;
  s.health.windows_quarantined = sani.quarantined;
  s.health.windows_dropped = dropped_.load(std::memory_order_relaxed);
  s.health.revisions_rejected = revisions_rejected_;
  s.health.degraded_resolves = degraded_resolves_;
  s.health.history_evicted = history_evicted_;
  return s;
}

OnlinePipeline::Snapshot OnlinePipeline::snapshot() const {
  common::MutexLock lock(mutex_);
  Snapshot s;
  s.stats = stats_locked();
  if (sanitizer_.has_value()) s.sanitizer = sanitizer_->stats();
  s.latest = latest_;
  s.next_cursor = next_seq_;
  return s;
}

}  // namespace repro::online
