#include "repro/online/pipeline.hpp"

#include <utility>

#include "repro/common/ensure.hpp"

namespace repro::online {

OnlinePipeline::OnlinePipeline(engine::ModelEngine& engine,
                               OnlinePipelineOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.builder.ways == 0) options_.builder.ways = engine_.ways();
  REPRO_ENSURE(options_.builder.ways == engine_.ways(),
               "builder grid must match the engine's cache ways");
  common::MutexLock lock(mutex_);
  if (options_.harden) {
    if (options_.sanitizer.ways == 0) options_.sanitizer.ways = engine_.ways();
    sanitizer_.emplace(options_.sanitizer);
  }
  if (options_.power.enabled)
    refitter_.emplace(engine_.machine().cores, options_.power);
}

void OnlinePipeline::monitor(ProcessId pid,
                             engine::ProcessHandle handle) {
  // Fetch the baseline before taking the pipeline lock: profile() takes
  // the engine's registry lock, and holding ours across it here would
  // widen the mutex_ → registry lock ordering for no benefit.
  const core::ProcessProfile baseline = engine_.profile(handle);
  auto m = std::make_unique<Monitored>();
  m->pid = pid;
  m->name = baseline.name;
  m->handle = handle;
  m->builder = std::make_unique<ProfileBuilder>(baseline.name,
                                                options_.builder);
  m->builder->set_baseline(baseline);
  common::MutexLock lock(mutex_);
  Monitored* raw = m.get();
  monitored_.push_back(std::move(m));
  stream_.attach(
      pid, [this, raw](const WindowObservation& obs) REPRO_REQUIRES(mutex_) {
        if (auto revision = raw->builder->push(obs))
          apply_revision(*raw, std::move(*revision), obs.time);
      });
}

void OnlinePipeline::monitor(ProcessId pid, std::string name) {
  auto m = std::make_unique<Monitored>();
  m->pid = pid;
  m->name = name;
  m->builder = std::make_unique<ProfileBuilder>(std::move(name),
                                                options_.builder);
  common::MutexLock lock(mutex_);
  Monitored* raw = m.get();
  monitored_.push_back(std::move(m));
  stream_.attach(
      pid, [this, raw](const WindowObservation& obs) REPRO_REQUIRES(mutex_) {
        if (auto revision = raw->builder->push(obs))
          apply_revision(*raw, std::move(*revision), obs.time);
      });
}

std::optional<engine::ProcessHandle> OnlinePipeline::handle_of(
    ProcessId pid) const {
  common::MutexLock lock(mutex_);
  for (const auto& m : monitored_)
    if (m->pid == pid) return m->handle;
  return std::nullopt;
}

void OnlinePipeline::set_query(engine::CoScheduleQuery query) {
  common::MutexLock lock(mutex_);
  query_ = std::move(query);
  latest_.reset();  // stale seeds would belong to the previous query
}

void OnlinePipeline::push(const sim::Sample& sample) {
  common::MutexLock lock(mutex_);
  if (!sanitizer_.has_value()) {
    stream_.push(sample);
    refit_power(sample);
    return;
  }
  // Quarantined windows reach neither the performance stream nor the
  // power refitter — the refit consumes the same hardened window path.
  sim::Sample clean;
  if (sanitizer_->sanitize(sample, &clean)) {
    stream_.push(clean);
    refit_power(clean);
  }
}

void OnlinePipeline::refit_power(const sim::Sample& sample) {
  if (!refitter_.has_value()) return;
  // Refits revise an existing calibration; a performance-only engine
  // has nothing to revise. Engine accessors take the registry lock
  // inside the pipeline lock — the documented lock order.
  if (!engine_.has_power_model()) return;
  const core::PowerModel incumbent = engine_.power_model();
  std::optional<PowerRefitAttempt> attempt =
      refitter_->push(sample, incumbent);
  if (!attempt.has_value()) return;

  PowerRevisionEvent event;
  event.time = attempt->time;
  event.reason = attempt->reason;
  event.rank_deficient = attempt->rank_deficient;
  event.r2 = attempt->fit.r2;
  event.accuracy = attempt->fit.accuracy;
  event.candidate_err_pct = attempt->candidate_err_pct;
  event.incumbent_err_pct = attempt->incumbent_err_pct;
  event.window_samples = attempt->window_samples;
  if (attempt->accepted) {
    event.idle = attempt->model->idle_total();
    event.coefficients = attempt->model->coefficients();
    // Validate-before-mutate: a refusal leaves last-good installed.
    if (engine_.try_update_power(*attempt->model)) {
      event.applied = true;
      event.revision = engine_.power_revision();
      ++power_revisions_;
    } else {
      event.reason = "engine validation refused the revision";
      ++power_rejected_;
    }
  } else {
    if (!attempt->rank_deficient) {
      event.idle = attempt->fit.intercept;
      for (std::size_t i = 0; i < event.coefficients.size(); ++i)
        event.coefficients[i] = attempt->fit.coefficients[i];
    }
    ++power_rejected_;
  }
  record_power_event(std::move(event));
}

void OnlinePipeline::record_power_event(PowerRevisionEvent event) {
  event.seq = power_next_seq_++;
  power_history_.push_back(std::move(event));
  if (options_.history_capacity > 0 &&
      power_history_.size() > options_.history_capacity) {
    power_history_.pop_front();
    ++history_evicted_;
  }
}

void OnlinePipeline::finish() {
  common::MutexLock lock(mutex_);
  for (auto& m : monitored_) {
    if (auto revision = m->builder->finish()) {
      // finish() has no window timestamp; reuse the last event's (the
      // trace stays ordered).
      const Seconds t = history_.empty() ? 0.0 : history_.back().time;
      apply_revision(*m, std::move(*revision), t);
    }
  }
}

std::optional<engine::SystemPrediction> OnlinePipeline::latest() const {
  common::MutexLock lock(mutex_);
  return latest_;
}

std::deque<RevisionEvent> OnlinePipeline::history() const {
  common::MutexLock lock(mutex_);
  return history_;
}

std::vector<RevisionEvent> OnlinePipeline::history_since(
    std::uint64_t since) const {
  common::MutexLock lock(mutex_);
  std::vector<RevisionEvent> out;
  // Ring seqs are contiguous [next_seq_ - size, next_seq_), so the
  // first event with seq >= since sits at a computable offset.
  if (history_.empty() || since >= next_seq_) return out;
  const std::uint64_t front_seq = next_seq_ - history_.size();
  const std::uint64_t start = since > front_seq ? since - front_seq : 0;
  out.reserve(history_.size() - static_cast<std::size_t>(start));
  for (std::size_t i = static_cast<std::size_t>(start); i < history_.size();
       ++i)
    out.push_back(history_[i]);
  return out;
}

std::deque<PowerRevisionEvent> OnlinePipeline::power_history() const {
  common::MutexLock lock(mutex_);
  return power_history_;
}

std::vector<PowerRevisionEvent> OnlinePipeline::power_history_since(
    std::uint64_t since) const {
  common::MutexLock lock(mutex_);
  std::vector<PowerRevisionEvent> out;
  if (power_history_.empty() || since >= power_next_seq_) return out;
  const std::uint64_t front_seq = power_next_seq_ - power_history_.size();
  const std::uint64_t start = since > front_seq ? since - front_seq : 0;
  out.reserve(power_history_.size() - static_cast<std::size_t>(start));
  for (std::size_t i = static_cast<std::size_t>(start);
       i < power_history_.size(); ++i)
    out.push_back(power_history_[i]);
  return out;
}

std::vector<double> OnlinePipeline::warm_seeds() const {
  if (!latest_.has_value()) return {};
  // Regroup the previous operating points per core (predict preserves
  // slot order within a core), then flatten in (core, slot) order —
  // the CoScheduleQuery::warm_start convention.
  std::vector<std::vector<double>> per_core(engine_.machine().cores);
  for (const engine::ProcessOperatingPoint& pt : latest_->processes)
    per_core[pt.core].push_back(pt.prediction.effective_size);
  std::vector<double> seeds;
  for (CoreId c = 0; c < engine_.machine().cores; ++c) {
    if (per_core[c].size() != query_->assignment.per_core[c].size())
      return {};  // query changed shape since the last solve: cold
    for (double s : per_core[c]) seeds.push_back(s);
  }
  return seeds;
}

void OnlinePipeline::apply_revision(Monitored& m, ProfileRevision revision,
                                    Seconds time) {
  // Degradation gate 1: a revision whose Eq. 3 fit barely explains its
  // own windows (mixed phases, residual corruption) must not replace a
  // working profile. Skipped while the process has no profile at all —
  // any model beats none for cold start.
  if (options_.harden && m.handle.has_value() && options_.max_fit_rms > 0.0 &&
      !(revision.quality.fit_rms <= options_.max_fit_rms)) {
    ++revisions_rejected_;
    return;
  }

  // Degradation gate 2: validation. update_process/register_process
  // validate before touching the registry, so a refusal here leaves the
  // engine's registry and memoized artifacts exactly as they were.
  if (m.handle.has_value()) {
    if (options_.harden) {
      if (!engine_.try_update_process(*m.handle,
                                      std::move(revision.profile))) {
        ++revisions_rejected_;
        return;
      }
    } else {
      engine_.update_process(*m.handle, std::move(revision.profile));
    }
  } else if (options_.harden) {
    try {
      m.handle = engine_.register_process(std::move(revision.profile));
    } catch (const Error&) {
      ++revisions_rejected_;
      return;
    }
  } else {
    m.handle = engine_.register_process(std::move(revision.profile));
  }
  ++revisions_;

  RevisionEvent event;
  event.time = time;
  event.handle = *m.handle;
  event.revision = engine_.profile(*m.handle).revision;
  event.quality = revision.quality;

  if (query_.has_value()) {
    bool all_registered = true;
    for (const auto& mon : monitored_)
      if (!mon->handle.has_value()) all_registered = false;
    if (all_registered) {
      engine::CoScheduleQuery q = *query_;
      q.warm_start = warm_seeds();
      try {
        engine::SystemPrediction prediction = engine_.predict(q);
        ++resolves_;
        solver_iterations_ +=
            static_cast<std::uint64_t>(prediction.solver_iterations);
        event.resolved = true;
        event.solver_iterations = prediction.solver_iterations;
        event.prediction = prediction;
        latest_ = std::move(prediction);
      } catch (const Error&) {
        // Degradation gate 3: a failed re-solve (Newton AND its
        // bisection fallback) must not escape sink(). Re-price from
        // the last-good equilibrium when there is one.
        if (!options_.harden) throw;
        ++degraded_resolves_;
        event.degraded = true;
        if (latest_.has_value()) {
          engine::SystemPrediction carried = *latest_;
          carried.degraded = true;
          carried.solver_iterations = 0;
          event.resolved = true;
          event.prediction = carried;
          latest_ = std::move(carried);
        }
      }
    }
  }
  record_event(std::move(event));
}

void OnlinePipeline::record_event(RevisionEvent event) {
  event.seq = next_seq_++;
  history_.push_back(std::move(event));
  if (options_.history_capacity > 0 &&
      history_.size() > options_.history_capacity) {
    history_.pop_front();
    ++history_evicted_;
  }
}

OnlinePipeline::Stats OnlinePipeline::stats() const {
  common::MutexLock lock(mutex_);
  Stats s;
  const SanitizerStats sani =
      sanitizer_.has_value() ? sanitizer_->stats() : SanitizerStats{};
  // `windows` counts raw ingested windows whether or not they survived
  // sanitization, so it stays monotonic and comparable across modes.
  s.windows = sanitizer_.has_value() ? sani.windows : stream_.windows();
  s.revisions = revisions_;
  s.resolves = resolves_;
  s.solver_iterations = solver_iterations_;
  s.power_revisions = power_revisions_;
  s.power_rejected = power_rejected_;
  for (const auto& m : monitored_) s.phase_changes += m->builder->phase_changes();
  s.health.windows_seen = s.windows;
  s.health.windows_forwarded =
      sanitizer_.has_value() ? sani.forwarded : stream_.windows();
  s.health.windows_repaired = sani.repaired;
  s.health.windows_quarantined = sani.quarantined;
  s.health.revisions_rejected = revisions_rejected_;
  s.health.degraded_resolves = degraded_resolves_;
  s.health.history_evicted = history_evicted_;
  return s;
}

SanitizerStats OnlinePipeline::sanitizer_stats() const {
  common::MutexLock lock(mutex_);
  return sanitizer_.has_value() ? sanitizer_->stats() : SanitizerStats{};
}

}  // namespace repro::online
