#include "repro/online/pipeline.hpp"

#include <utility>

namespace repro::online {

namespace {

ShardedPipelineOptions to_sharded(OnlinePipelineOptions options) {
  ShardedPipelineOptions s;
  s.shards = 1;
  s.producers = 1;
  s.builder = std::move(options.builder);
  s.harden = options.harden;
  s.sanitizer = std::move(options.sanitizer);
  s.max_fit_rms = options.max_fit_rms;
  s.history_capacity = options.history_capacity;
  s.power = options.power;
  s.coalesce_resolves = false;  // parity: every applied revision re-solves
  s.quarantine_capacity = options.quarantine_capacity;
  s.inline_ingest = options.inline_ingest;
  s.ring_capacity = options.ring_capacity;
  s.backpressure = options.backpressure;
  s.durability = std::move(options.durability);
  return s;
}

}  // namespace

OnlinePipeline::OnlinePipeline(engine::ModelEngine& engine,
                               OnlinePipelineOptions options)
    : impl_(engine, to_sharded(std::move(options))) {}

}  // namespace repro::online
