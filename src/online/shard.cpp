#include "repro/online/shard.hpp"

#include <utility>

#include "repro/common/ensure.hpp"

namespace repro::online {

namespace {

/// Classify one sanitize() call from its counter deltas — the verdict
/// taxonomy is exactly the SanitizerStats one, so no sanitizer API
/// change is needed and the coordinator's aggregated counters stay
/// bit-identical to a single sanitizer's.
WindowVerdict classify(const SanitizerStats& before,
                       const SanitizerStats& after) {
  if (after.quarantined_order > before.quarantined_order)
    return WindowVerdict::kQuarantinedOrder;
  if (after.quarantined_implausible > before.quarantined_implausible)
    return WindowVerdict::kQuarantinedImplausible;
  if (after.quarantined_outlier > before.quarantined_outlier)
    return WindowVerdict::kQuarantinedOutlier;
  if (after.repaired > before.repaired) return WindowVerdict::kRepaired;
  return WindowVerdict::kForwarded;
}

}  // namespace

const char* to_string(WindowVerdict verdict) {
  switch (verdict) {
    case WindowVerdict::kForwarded: return "forwarded";
    case WindowVerdict::kRepaired: return "repaired";
    case WindowVerdict::kQuarantinedOrder: return "out-of-order";
    case WindowVerdict::kQuarantinedImplausible: return "implausible";
    case WindowVerdict::kQuarantinedOutlier: return "outlier";
  }
  return "unknown";
}

PipelineShard::PipelineShard(std::size_t index, BatchSink& sink,
                             PipelineShardOptions options)
    : index_(index), sink_(sink), options_(std::move(options)) {}

PipelineShard::DieState& PipelineShard::state_of(DieId die) {
  auto it = dies_.find(die);
  if (it == dies_.end()) {
    it = dies_.emplace(die, DieState{}).first;
    if (options_.harden) it->second.sanitizer.emplace(options_.sanitizer);
  }
  return it->second;
}

std::uint64_t PipelineShard::phase_total(const DieState& state) const {
  std::uint64_t total = 0;
  for (const auto& b : state.builders) total += b->builder->phase_changes();
  return total;
}

std::uint64_t PipelineShard::frequency_step_total(
    const DieState& state) const {
  std::uint64_t total = 0;
  for (const auto& b : state.builders)
    total += b->builder->frequency_steps();
  return total;
}

void PipelineShard::attach_to_stream(DieState& state, BuilderSlot* raw) {
  state.stream.attach(
      raw->pid,
      [this, raw](const WindowObservation& obs) REPRO_REQUIRES(mutex_) {
        if (auto revision = raw->builder->push(obs)) {
          ShardCandidate candidate;
          candidate.slot = raw->slot;
          candidate.time = obs.time;
          candidate.revision = std::move(*revision);
          current_->candidates.push_back(std::move(candidate));
        }
      });
}

void PipelineShard::attach(DieId die, std::size_t slot, ProcessId pid,
                           std::unique_ptr<ProfileBuilder> builder) {
  REPRO_ENSURE(builder != nullptr, "attach needs a builder");
  common::MutexLock lock(mutex_);
  DieState& state = state_of(die);
  auto entry = std::make_unique<BuilderSlot>();
  entry->slot = slot;
  entry->pid = pid;
  entry->builder = std::move(builder);
  BuilderSlot* raw = entry.get();
  state.builders.push_back(std::move(entry));
  attach_to_stream(state, raw);
}

void PipelineShard::ingest(DieId die, const sim::Sample& sample) {
  common::MutexLock lock(mutex_);
  DieState& state = state_of(die);
  WindowBatch batch;
  batch.die = die;
  batch.seq = sample.seq;
  batch.time = sample.time;
  const std::uint64_t phases_before = phase_total(state);
  const std::uint64_t freq_steps_before = frequency_step_total(state);

  if (!state.sanitizer.has_value()) {
    current_ = &batch;
    state.stream.push(sample);
    current_ = nullptr;
    if (options_.capture_forwarded) batch.window = sample;
  } else {
    const SanitizerStats before = state.sanitizer->stats();
    sim::Sample clean;
    const bool ok = state.sanitizer->sanitize(sample, &clean);
    batch.verdict = classify(before, state.sanitizer->stats());
    if (ok) {
      current_ = &batch;
      state.stream.push(clean);
      current_ = nullptr;
      if (options_.capture_forwarded) batch.window = std::move(clean);
    } else if (options_.quarantine_capacity > 0) {
      QuarantineRecord record;
      record.die = die;
      record.seq = sample.seq;
      record.time = sample.time;
      record.verdict = batch.verdict;
      record.window = sample;  // the raw window, pre-repair
      quarantine_.push_back(std::move(record));
      if (quarantine_.size() > options_.quarantine_capacity)
        quarantine_.pop_front();
    }
  }

  batch.phase_changes = phase_total(state) - phases_before;
  batch.frequency_steps = frequency_step_total(state) - freq_steps_before;
  // Handoff under the shard mutex: batches leave in this die's ingest
  // order, which is what the coordinator's merge relies on.
  sink_.deliver(std::move(batch));
}

std::optional<ProfileRevision> PipelineShard::flush_builder(
    std::size_t slot) {
  common::MutexLock lock(mutex_);
  for (auto& [die, state] : dies_)
    for (auto& b : state.builders)
      if (b->slot == slot) return b->builder->finish();
  return std::nullopt;
}

void PipelineShard::reset_streams() {
  common::MutexLock lock(mutex_);
  for (auto& [die, state] : dies_) {
    if (options_.harden) state.sanitizer.emplace(options_.sanitizer);
    // Fresh stream, same builders: window indices restart at 0 but the
    // builders' accumulated revisions — the last-good model state —
    // survive the restart untouched.
    state.stream = SampleStream{};
    for (auto& b : state.builders) attach_to_stream(state, b.get());
  }
}

std::vector<QuarantineRecord> PipelineShard::quarantined() const {
  common::MutexLock lock(mutex_);
  return {quarantine_.begin(), quarantine_.end()};
}

}  // namespace repro::online
