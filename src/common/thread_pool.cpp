#include "repro/common/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <memory>

#include "repro/common/ensure.hpp"

namespace repro::common {

namespace {

/// Identity of the current thread within a pool; lets nested submit()
/// calls feed the submitting worker's own deque.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

std::size_t ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_threads() : threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    queues_.push_back(std::make_unique<Queue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(sleep_mutex_);
    stopping_ = true;
  }
  sleep_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  REPRO_ENSURE(static_cast<bool>(task), "empty task");
  std::size_t target;
  {
    MutexLock lock(sleep_mutex_);
    REPRO_ENSURE(!stopping_, "submit on a stopping pool");
    target = (tls_worker.pool == this) ? tls_worker.index
                                       : next_queue_++ % queues_.size();
    ++pending_;
  }
  {
    MutexLock lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  sleep_cv_.notify_one();
}

bool ThreadPool::pop_own(std::size_t self, std::function<void()>& out) {
  Queue& q = *queues_[self];
  MutexLock lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());  // LIFO: freshest (cache-warm) first
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::steal(std::size_t thief, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    Queue& q = *queues_[(thief + hop) % n];
    MutexLock lock(q.mutex);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());  // FIFO: oldest, least contended end
    q.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::try_run_one(std::size_t self) {
  std::function<void()> task;
  if (!pop_own(self, task) && !steal(self, task)) return false;
  {
    MutexLock lock(sleep_mutex_);
    --pending_;
  }
  task();
  return true;
}

void ThreadPool::worker_loop(std::size_t self) {
  tls_worker = {this, self};
  while (true) {
    if (try_run_one(self)) continue;
    MutexLock lock(sleep_mutex_);
    if (pending_ > 0) continue;  // raced with a submit; go claim it
    if (stopping_) return;       // queues drained, shutting down
    sleep_cv_.wait(sleep_mutex_, [this]() REPRO_REQUIRES(sleep_mutex_) {
      return pending_ > 0 || stopping_;
    });
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  REPRO_ENSURE(static_cast<bool>(body), "empty body");

  struct ForState {
    const std::function<void(std::size_t)>* body = nullptr;
    std::size_t limit REPRO_CONST_AFTER_INIT = 0;
    std::atomic<std::size_t> next{0};
    // Named distinctly from ThreadPool::Queue::mutex so every lock
    // site resolves unambiguously in the lock/order pass.
    Mutex done_mutex;
    CondVar done_cv;
    std::size_t completed REPRO_GUARDED_BY(done_mutex) = 0;
    std::exception_ptr error REPRO_GUARDED_BY(done_mutex);
  };
  auto state = std::make_shared<ForState>();
  state->body = &body;
  state->limit = n;

  // Claim loop shared by the caller and the helper tasks: indices are
  // handed out one atomic fetch at a time, so load imbalance between
  // candidates self-corrects. Once every index is claimed the loop body
  // is never dereferenced again, which keeps `body` (a reference owned
  // by this frame) safe even while helper closures are still unwinding.
  auto drain = [](const std::shared_ptr<ForState>& s) {
    while (true) {
      // relaxed: each index is claimed exactly once by atomicity
      // alone; the done_mutex lock below orders the results.
      const std::size_t i = s->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= s->limit) return;
      std::exception_ptr error;
      try {
        (*s->body)(i);
      } catch (...) {
        error = std::current_exception();
      }
      MutexLock lock(s->done_mutex);
      if (error && !s->error) s->error = error;
      if (++s->completed == s->limit) s->done_cv.notify_all();
    }
  };

  const std::size_t helpers = std::min(workers_.size(), n);
  for (std::size_t h = 0; h < helpers; ++h)
    submit([state, drain] { drain(state); });
  drain(state);

  MutexLock lock(state->done_mutex);
  state->done_cv.wait(state->done_mutex,
                      [&]() REPRO_REQUIRES(state->done_mutex) {
                        return state->completed == state->limit;
                      });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace repro::common
