#include "repro/common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "repro/common/ensure.hpp"

namespace repro {

void Table::set_header(std::vector<std::string> header) {
  REPRO_ENSURE(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> cells) {
  REPRO_ENSURE(cells.size() == header_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, v);
  return buf;
}

std::string Table::pair(double a, double b, int precision) {
  char buf[128];
  std::snprintf(buf, sizeof buf, "%.*f / %.*f", precision, a, precision, b);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };

  os << '\n' << caption_ << '\n';
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      const bool quote = row[c].find_first_of(",\"\n") != std::string::npos;
      if (quote) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') os << '"';
          os << ch;
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << '\n';
  };
  os << "# " << caption_ << '\n';
  emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace repro
