#include "repro/common/rng.hpp"

#include <numeric>

namespace repro {

DiscreteSampler::DiscreteSampler(std::span<const double> weights) {
  REPRO_ENSURE(!weights.empty(), "discrete distribution needs >= 1 outcome");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    REPRO_ENSURE(w >= 0.0, "discrete weights must be nonnegative");
    total += w;
  }
  REPRO_ENSURE(total > 0.0, "discrete weights must have a positive sum");

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's alias method. Scale so the mean bucket weight is 1.
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i)
    scaled[i] = weights[i] * static_cast<double>(n) / total;

  std::vector<std::size_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    (scaled[i] < 1.0 ? small : large).push_back(i);

  while (!small.empty() && !large.empty()) {
    const std::size_t s = small.back();
    const std::size_t l = large.back();
    small.pop_back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::size_t i : large) prob_[i] = 1.0;
  for (std::size_t i : small) prob_[i] = 1.0;  // numerical leftovers
}

}  // namespace repro
