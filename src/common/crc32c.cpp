#include "repro/common/crc32c.hpp"

#include <array>

namespace repro::common {

namespace {

/// 256-entry lookup table for the reflected Castagnoli polynomial,
/// built once at static-init time (constexpr: no run-time cost, no
/// threading concerns).
constexpr std::uint32_t kPolynomial = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit)
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ kPolynomial : crc >> 1;
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = build_table();

std::uint32_t crc32c_sw(std::uint32_t crc, const unsigned char* bytes,
                        std::size_t size) {
  for (std::size_t i = 0; i < size; ++i)
    crc = (crc >> 8) ^ kTable[(crc ^ bytes[i]) & 0xFFu];
  return crc;
}

#if defined(__x86_64__) && defined(__GNUC__)
// Castagnoli is the polynomial x86 implements in silicon (SSE4.2
// CRC32 instruction) — ~30x the table walk, and the journal checksums
// every frame on the writer's hot path. Dispatch at run time so the
// binary still runs on pre-Nehalem parts.
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::uint32_t crc, const unsigned char* bytes, std::size_t size) {
  std::uint64_t c = crc;
  while (size >= 8) {
    std::uint64_t chunk;
    __builtin_memcpy(&chunk, bytes, 8);
    c = __builtin_ia32_crc32di(c, chunk);
    bytes += 8;
    size -= 8;
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  while (size > 0) {
    c32 = __builtin_ia32_crc32qi(c32, *bytes);
    ++bytes;
    --size;
  }
  return c32;
}

bool have_sse42() { return __builtin_cpu_supports("sse4.2") != 0; }
#endif

}  // namespace

std::uint32_t crc32c(std::uint32_t crc, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  crc = ~crc;
#if defined(__x86_64__) && defined(__GNUC__)
  static const bool hw = have_sse42();
  if (hw) return ~crc32c_hw(crc, bytes, size);
#endif
  return ~crc32c_sw(crc, bytes, size);
}

}  // namespace repro::common
