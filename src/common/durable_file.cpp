#include "repro/common/durable_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "repro/common/ensure.hpp"

namespace repro::common {

namespace {

std::string errno_text(const char* op, const std::string& path) {
  std::ostringstream out;
  out << op << " " << path << ": " << std::strerror(errno);
  return out.str();
}

/// Parent directory of `path` ("." for a bare filename) — the thing
/// whose fsync makes a rename durable.
std::string parent_dir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// write(2) until every byte is out, retrying EINTR; false on error or
/// a zero-byte write (a wedged descriptor would loop forever).
bool write_fully(int fd, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const char*>(data);
  while (size > 0) {
    const ssize_t n = ::write(fd, bytes, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      errno = EIO;
      return false;
    }
    bytes += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool fsync_retry(int fd) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

bool fdatasync_retry(int fd) {
  while (::fdatasync(fd) != 0) {
    if (errno != EINTR) return false;
  }
  return true;
}

}  // namespace

DurableFile::~DurableFile() { close(); }

DurableFile::DurableFile(DurableFile&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      error_(std::move(other.error_)) {}

DurableFile& DurableFile::operator=(DurableFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    error_ = std::move(other.error_);
  }
  return *this;
}

DurableFile DurableFile::open_append(const std::string& path) {
  DurableFile file;
  file.path_ = path;
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    file.error_ = errno_text("open", path);
    return file;
  }
  file.fd_ = fd;
  return file;
}

bool DurableFile::write_all(const void* data, std::size_t size) {
  if (!ok()) return false;
  if (!write_fully(fd_, data, size)) {
    error_ = errno_text("write", path_);
    return false;
  }
  return true;
}

bool DurableFile::sync() {
  if (!ok()) return false;
  if (!fsync_retry(fd_)) {
    error_ = errno_text("fsync", path_);
    return false;
  }
  return true;
}

bool DurableFile::sync_data() {
  if (!ok()) return false;
  if (!fdatasync_retry(fd_)) {
    error_ = errno_text("fdatasync", path_);
    return false;
  }
  return true;
}

bool DurableFile::truncate(std::uint64_t size) {
  if (!ok()) return false;
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    error_ = errno_text("ftruncate", path_);
    return false;
  }
  // O_APPEND ignores the file offset for writes, but keep it coherent
  // for size() readers anyway.
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) {
    error_ = errno_text("lseek", path_);
    return false;
  }
  return true;
}

std::optional<std::uint64_t> DurableFile::size() const {
  if (fd_ < 0) return std::nullopt;
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return std::nullopt;
  return static_cast<std::uint64_t>(st.st_size);
}

void DurableFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void atomic_write_file(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  REPRO_ENSURE(fd >= 0, errno_text("open", tmp));
  bool wrote = write_fully(fd, contents.data(), contents.size());
  const int write_errno = errno;
  bool synced = wrote && fsync_retry(fd);
  const int sync_errno = errno;
  ::close(fd);
  if (!wrote || !synced) ::unlink(tmp.c_str());
  errno = write_errno;
  REPRO_ENSURE(wrote, errno_text("write", tmp));
  errno = sync_errno;
  REPRO_ENSURE(synced, errno_text("fsync", tmp));
  REPRO_ENSURE(::rename(tmp.c_str(), path.c_str()) == 0,
               errno_text("rename", tmp));
  // Make the rename itself durable: fsync the containing directory.
  // Failure to *open* the directory (exotic filesystems) is tolerated;
  // a failed fsync on an open directory is not.
  const std::string dir = parent_dir(path);
  int dfd = -1;
  do {
    dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  } while (dfd < 0 && errno == EINTR);
  if (dfd >= 0) {
    const bool dir_synced = fsync_retry(dfd);
    ::close(dfd);
    REPRO_ENSURE(dir_synced, errno_text("fsync", dir));
  }
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  REPRO_ENSURE(!in.bad(), "read " + path + " failed");
  return std::move(buffer).str();
}

}  // namespace repro::common
