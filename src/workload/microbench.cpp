#include "repro/workload/microbench.hpp"

#include "repro/common/ensure.hpp"

namespace repro::workload {

WorkloadSpec microbench_spec(MicrobenchComponent component, int level) {
  REPRO_ENSURE(level >= 0 && level < kMicrobenchLevels,
               "level out of range");
  // Intensity steps down from 1.0 by ~11% per level (8 levels), like
  // the paper's per-10 s frequency reduction.
  const double f = 1.0 - 0.11 * static_cast<double>(level);

  WorkloadSpec s;
  // Baseline: minimal, cache-friendly activity.
  s.reuse_weights = {1.0, 0.5};  // shallow reuse → L2 hits
  s.new_line_weight = 0.0;
  s.stream_weight = 0.0;
  s.mix = sim::InstructionMix{.l2_api = 0.002,
                              .l1_rpi = 0.10,
                              .branch_pi = 0.02,
                              .fp_pi = 0.0,
                              .base_cpi = 1.0};

  switch (component) {
    case MicrobenchComponent::kL1:
      s.name = "ub-l1";
      s.mix.l1_rpi = 0.65 * f + 0.05;
      break;
    case MicrobenchComponent::kL2:
      s.name = "ub-l2";
      s.mix.l2_api = 0.05 * f + 0.003;
      s.mix.l1_rpi = 0.45;
      s.mix.base_cpi = 0.7;
      break;
    case MicrobenchComponent::kL2Miss:
      s.name = "ub-l2miss";
      s.mix.l2_api = 0.04 * f + 0.003;
      s.mix.l1_rpi = 0.35;
      s.reuse_weights.clear();
      s.new_line_weight = 1.0;  // every access a compulsory miss
      break;
    case MicrobenchComponent::kBranch:
      s.name = "ub-branch";
      s.mix.branch_pi = 0.50 * f + 0.02;
      break;
    case MicrobenchComponent::kFp:
      s.name = "ub-fp";
      s.mix.fp_pi = 0.70 * f + 0.02;
      break;
  }
  s.name += "-" + std::to_string(level);
  s.validate();
  return s;
}

std::vector<WorkloadSpec> microbench_all_phases() {
  std::vector<WorkloadSpec> out;
  for (MicrobenchComponent c :
       {MicrobenchComponent::kL1, MicrobenchComponent::kL2,
        MicrobenchComponent::kL2Miss, MicrobenchComponent::kBranch,
        MicrobenchComponent::kFp})
    for (int level = 0; level < kMicrobenchLevels; ++level)
      out.push_back(microbench_spec(c, level));
  return out;
}

}  // namespace repro::workload
