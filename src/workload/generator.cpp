#include "repro/workload/generator.hpp"

#include <algorithm>

namespace repro::workload {

StackDistanceGenerator::StackDistanceGenerator(const WorkloadSpec& spec,
                                               std::uint32_t sets,
                                               std::uint32_t stack_cap)
    : spec_(spec),
      sets_(sets),
      stack_cap_(stack_cap != 0
                     ? stack_cap
                     : std::max<std::uint32_t>(
                           1, static_cast<std::uint32_t>(
                                  spec.reuse_weights.size()))),
      outcome_([&] {
        spec.validate();
        std::vector<double> weights = spec.reuse_weights;
        weights.push_back(spec.new_line_weight);
        weights.push_back(spec.stream_weight);
        return DiscreteSampler(weights);
      }()),
      new_outcome_(spec.reuse_weights.size()),
      stream_outcome_(spec.reuse_weights.size() + 1),
      stack_buf_(static_cast<std::size_t>(sets) * stack_cap_, 0),
      head_(sets, 0),
      size_(sets, 0),
      stream_cursor_(0) {
  REPRO_ENSURE(sets_ > 0, "generator needs at least one set");
  REPRO_ENSURE(stack_cap_ > 0 && stack_cap_ < 0x8000,
               "stack cap out of range");
  REPRO_ENSURE(spec.reuse_weights.size() <= stack_cap_,
               "reuse depths deeper than the stack cap");
}

sim::MemoryAccess StackDistanceGenerator::new_line_access(std::uint32_t set) {
  std::uint64_t* ring = stack_buf_.data() +
                        static_cast<std::size_t>(set) * stack_cap_;
  std::uint16_t& head = head_[set];
  head = static_cast<std::uint16_t>((head + stack_cap_ - 1) % stack_cap_);
  const std::uint64_t line = next_line_id_++;
  ring[head] = line;
  if (size_[set] < stack_cap_) ++size_[set];
  return sim::MemoryAccess{set, line, sim::kNoStreamAddr};
}

sim::MemoryAccess StackDistanceGenerator::reuse_access(std::uint32_t set,
                                                       std::uint32_t depth) {
  if (depth > size_[set]) return new_line_access(set);
  std::uint64_t* ring = stack_buf_.data() +
                        static_cast<std::size_t>(set) * stack_cap_;
  const std::uint32_t head = head_[set];
  // Wrap-aware indexing without modulo (indices stay below 2·cap).
  std::uint32_t pos = head + depth - 1;
  if (pos >= stack_cap_) pos -= stack_cap_;
  const std::uint64_t line = ring[pos];
  // Move to front: walk back from the reused slot, shifting the
  // depth−1 younger entries down by one.
  std::uint32_t dst = pos;
  for (std::uint32_t i = depth - 1; i > 0; --i) {
    const std::uint32_t src = dst == 0 ? stack_cap_ - 1 : dst - 1;
    ring[dst] = ring[src];
    dst = src;
  }
  ring[head] = line;
  return sim::MemoryAccess{set, line, sim::kNoStreamAddr};
}

sim::MemoryAccess StackDistanceGenerator::next(Rng& rng) {
  const std::size_t outcome = outcome_.sample(rng);
  if (outcome == stream_outcome_)
    return sim::stream_access(stream_cursor_++, sets_);
  const std::uint32_t set =
      static_cast<std::uint32_t>(rng.uniform_index(sets_));
  if (outcome == new_outcome_) return new_line_access(set);
  return reuse_access(set, static_cast<std::uint32_t>(outcome) + 1);
}

std::unique_ptr<sim::AccessGenerator> StackDistanceGenerator::clone() const {
  return std::make_unique<StackDistanceGenerator>(spec_, sets_, stack_cap_);
}

std::unique_ptr<sim::AccessGenerator> make_generator(const std::string& name,
                                                     std::uint32_t sets) {
  return std::make_unique<StackDistanceGenerator>(find_spec(name), sets);
}

}  // namespace repro::workload
