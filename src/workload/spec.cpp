#include "repro/workload/spec.hpp"

#include "repro/common/ensure.hpp"

namespace repro::workload {

void WorkloadSpec::validate() const {
  REPRO_ENSURE(!name.empty(), "workload needs a name");
  REPRO_ENSURE(new_line_weight >= 0.0 && stream_weight >= 0.0,
               "negative weights");
  double total = new_line_weight + stream_weight;
  for (double w : reuse_weights) {
    REPRO_ENSURE(w >= 0.0, "negative reuse weight");
    total += w;
  }
  REPRO_ENSURE(total > 0.0, "workload needs positive access weight");
  mix.validate();
}

std::vector<double> geometric_weights(double ratio, std::size_t depths) {
  REPRO_ENSURE(ratio > 0.0 && ratio < 1.0, "ratio must be in (0, 1)");
  REPRO_ENSURE(depths > 0, "need at least one depth");
  std::vector<double> w(depths);
  double v = 1.0;
  for (std::size_t d = 0; d < depths; ++d) {
    w[d] = v;
    v *= ratio;
  }
  return w;
}

std::vector<double> uniform_weights(std::size_t depths) {
  REPRO_ENSURE(depths > 0, "need at least one depth");
  return std::vector<double>(depths, 1.0);
}

namespace {

WorkloadSpec make(std::string name, std::vector<double> reuse, double nw,
                  double sw, sim::InstructionMix mix) {
  WorkloadSpec s;
  s.name = std::move(name);
  s.reuse_weights = std::move(reuse);
  s.new_line_weight = nw;
  s.stream_weight = sw;
  s.mix = mix;
  s.validate();
  return s;
}

std::vector<WorkloadSpec> build_suite() {
  std::vector<WorkloadSpec> suite;

  // gzip — integer compression; small hot working set, almost all
  // reuse within a few ways; very low L2 traffic.
  suite.push_back(make(
      "gzip", geometric_weights(0.45, 8), 0.04, 0.02,
      {.l2_api = 0.004, .l1_rpi = 0.35, .branch_pi = 0.18, .fp_pi = 0.02,
       .base_cpi = 0.9}));

  // vpr — place & route; working set comparable to a cache share, so
  // its MPA curve keeps falling across many ways (contention-
  // sensitive, like the paper's high SPI error for vpr).
  suite.push_back(make(
      "vpr", geometric_weights(0.86, 24), 0.06, 0.02,
      {.l2_api = 0.012, .l1_rpi = 0.32, .branch_pi = 0.12, .fp_pi = 0.10,
       .base_cpi = 1.1}));

  // mcf — pointer chasing over a huge graph; heavy compulsory traffic
  // and deep reuse: the classic memory-bound victim.
  suite.push_back(make(
      "mcf", geometric_weights(0.90, 32), 0.42, 0.03,
      {.l2_api = 0.055, .l1_rpi = 0.30, .branch_pi = 0.19, .fp_pi = 0.0,
       .base_cpi = 1.4}));

  // bzip2 — block compression; bimodal reuse (hot dictionary + block
  // sweeps around 10–14 ways deep).
  {
    std::vector<double> w = geometric_weights(0.5, 16);
    for (std::size_t d = 9; d <= 13; ++d) w[d] += 0.35;
    suite.push_back(make(
        "bzip2", std::move(w), 0.08, 0.04,
        {.l2_api = 0.007, .l1_rpi = 0.33, .branch_pi = 0.15, .fp_pi = 0.01,
         .base_cpi = 1.0}));
  }

  // twolf — placement; mid-size working set with spread reuse.
  suite.push_back(make(
      "twolf", geometric_weights(0.84, 24), 0.05, 0.01,
      {.l2_api = 0.015, .l1_rpi = 0.30, .branch_pi = 0.14, .fp_pi = 0.05,
       .base_cpi = 1.15}));

  // art — neural-net FP; working set slightly exceeding a fair cache
  // share (near-uniform reuse over ~20 ways), highly contention-
  // sensitive.
  suite.push_back(make(
      "art", uniform_weights(20), 0.18, 0.02,
      {.l2_api = 0.045, .l1_rpi = 0.28, .branch_pi = 0.10, .fp_pi = 0.30,
       .base_cpi = 1.3}));

  // equake — FP stencil; dominated by sequential sweeps (the one
  // benchmark the paper found benefits significantly from hardware
  // prefetching).
  suite.push_back(make(
      "equake", geometric_weights(0.4, 8), 0.05, 0.30,
      {.l2_api = 0.020, .l1_rpi = 0.30, .branch_pi = 0.08, .fp_pi = 0.35,
       .base_cpi = 1.1}));

  // ammp — molecular dynamics FP; deep but decaying reuse.
  suite.push_back(make(
      "ammp", geometric_weights(0.88, 28), 0.10, 0.05,
      {.l2_api = 0.025, .l1_rpi = 0.31, .branch_pi = 0.09, .fp_pi = 0.28,
       .base_cpi = 1.25}));

  // gcc — compiler; many small structures, moderate compulsory churn.
  suite.push_back(make(
      "gcc", geometric_weights(0.75, 16), 0.12, 0.03,
      {.l2_api = 0.008, .l1_rpi = 0.38, .branch_pi = 0.20, .fp_pi = 0.01,
       .base_cpi = 1.2}));

  // parser — dictionary walking; shallow reuse, some churn.
  suite.push_back(make(
      "parser", geometric_weights(0.70, 12), 0.10, 0.02,
      {.l2_api = 0.007, .l1_rpi = 0.36, .branch_pi = 0.21, .fp_pi = 0.0,
       .base_cpi = 1.05}));

  return suite;
}

}  // namespace

const std::vector<WorkloadSpec>& spec_suite() {
  static const std::vector<WorkloadSpec> suite = build_suite();
  return suite;
}

const WorkloadSpec& find_spec(const std::string& name) {
  for (const WorkloadSpec& s : spec_suite())
    if (s.name == name) return s;
  REPRO_ENSURE(false, "unknown workload: " + name);
  __builtin_unreachable();
}

}  // namespace repro::workload
