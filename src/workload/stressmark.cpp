#include "repro/workload/stressmark.hpp"

#include "repro/common/ensure.hpp"
#include "repro/workload/generator.hpp"

namespace repro::workload {

WorkloadSpec make_stressmark_spec(std::uint32_t ways) {
  REPRO_ENSURE(ways > 0, "stressmark needs at least one way");
  WorkloadSpec s;
  s.name = "stressmark-" + std::to_string(ways);
  // All weight at depth W: the access pattern cycles through W lines
  // per set. (Until the stack has grown to W lines, a depth-W draw
  // degrades to a new-line access, which is exactly the fill phase.)
  s.reuse_weights.assign(ways, 0.0);
  s.reuse_weights[ways - 1] = 1.0;
  s.new_line_weight = 0.0;
  s.stream_weight = 0.0;
  // Very high access rate and trivial compute so the stressmark
  // re-establishes its occupancy faster than any suite workload can
  // erode it.
  s.mix = sim::InstructionMix{.l2_api = 0.12,
                              .l1_rpi = 0.30,
                              .branch_pi = 0.1,
                              .fp_pi = 0.0,
                              .base_cpi = 0.72};
  s.validate();
  return s;
}

std::unique_ptr<sim::AccessGenerator> make_stressmark(std::uint32_t ways,
                                                      std::uint32_t sets) {
  return std::make_unique<StackDistanceGenerator>(make_stressmark_spec(ways),
                                                  sets);
}

}  // namespace repro::workload
