#include "repro/workload/phased.hpp"

#include "repro/common/ensure.hpp"

namespace repro::workload {

PhasedGenerator::PhasedGenerator(std::vector<PhaseSegment> segments,
                                 std::uint32_t sets)
    : segments_(std::move(segments)), sets_(sets) {
  REPRO_ENSURE(!segments_.empty(), "need at least one phase");
  for (const PhaseSegment& s : segments_) {
    s.spec.validate();
    REPRO_ENSURE(s.accesses > 0, "phase must contain accesses");
  }
  active_ = std::make_unique<StackDistanceGenerator>(segments_[0].spec,
                                                     sets_);
}

sim::MemoryAccess PhasedGenerator::next(Rng& rng) {
  if (accesses_in_phase_ >= segments_[phase_].accesses &&
      phase_ + 1 < segments_.size()) {
    ++phase_;
    accesses_in_phase_ = 0;
    // A new program stage touches new data: fresh generator state.
    active_ = std::make_unique<StackDistanceGenerator>(
        segments_[phase_].spec, sets_);
  }
  ++accesses_in_phase_;
  return active_->next(rng);
}

std::unique_ptr<sim::AccessGenerator> PhasedGenerator::clone() const {
  return std::make_unique<PhasedGenerator>(segments_, sets_);
}

}  // namespace repro::workload
