#include "repro/sim/cache.hpp"

namespace repro::sim {

SharedCache::SharedCache(const CacheGeometry& geometry, bool prefetch_enabled,
                         std::uint32_t max_processes)
    : geometry_(geometry),
      prefetch_enabled_(prefetch_enabled),
      lines_(geometry.total_lines(), 0ull),
      stats_(max_processes),
      resident_lines_(max_processes, 0.0),
      last_stream_addr_(max_processes, kNoStreamAddr) {
  REPRO_ENSURE(geometry.sets > 0 && geometry.ways > 0, "empty cache");
  REPRO_ENSURE(max_processes > 0 && max_processes < (1u << 14),
               "bad process slot count");
}

std::uint32_t SharedCache::lookup_and_touch(std::uint32_t set,
                                            std::uint64_t line, ProcessId pid,
                                            bool* was_prefetched) {
  Line* base = set_begin(set);
  const Line wanted = pack(line, pid, false) & kIdentityMask;
  for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
    Line candidate = base[w];
    if (!(candidate & kValidBit) || (candidate & kIdentityMask) != wanted)
      continue;
    *was_prefetched = (candidate & kPrefetchedBit) != 0;
    candidate &= ~kPrefetchedBit;
    // Move to MRU (slot 0), shifting the younger lines down.
    for (std::uint32_t i = w; i > 0; --i) base[i] = base[i - 1];
    base[0] = candidate;
    return w;
  }
  return geometry_.ways;
}

void SharedCache::install(std::uint32_t set, std::uint64_t line, ProcessId pid,
                          bool prefetched) {
  Line* base = set_begin(set);

  // Choose the victim slot: globally LRU by default; under way
  // partitioning, the owner's own LRU line once it has used up its
  // quota in this set (invalid slots always come first).
  std::uint32_t victim_slot = geometry_.ways - 1;
  if (!quotas_.empty()) {
    std::uint32_t owned = 0;
    std::uint32_t own_lru = geometry_.ways;  // deepest own line
    std::uint32_t invalid = geometry_.ways;  // deepest invalid slot
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if (!(base[w] & kValidBit)) {
        invalid = w;
        continue;
      }
      if (owner_of(base[w]) == pid) {
        ++owned;
        own_lru = w;
      }
    }
    const std::uint32_t quota = pid < quotas_.size() ? quotas_[pid] : 0;
    if (owned >= quota) {
      REPRO_ENSURE(own_lru < geometry_.ways,
                   "process over quota with no own lines");
      victim_slot = own_lru;
    } else if (invalid < geometry_.ways) {
      victim_slot = invalid;
    }
    // else: under quota and set full of others' lines — evict global
    // LRU (partitioning guarantees victims are over-quota owners only
    // when all quotas are saturated; during warm-up this evicts the
    // oldest line, converging to the configured split).
  }

  const Line victim = base[victim_slot];
  if (victim & kValidBit) {
    const ProcessId prev = owner_of(victim);
    REPRO_ENSURE(prev < resident_lines_.size(), "corrupt owner");
    resident_lines_[prev] -= 1.0;
  }
  for (std::uint32_t i = victim_slot; i > 0; --i) base[i] = base[i - 1];
  base[0] = pack(line, pid, prefetched);
  resident_lines_[pid] += 1.0;
}

void SharedCache::set_partition(std::vector<std::uint32_t> quotas) {
  if (!quotas.empty()) {
    REPRO_ENSURE(quotas.size() <= stats_.size(),
                 "quota list longer than process slots");
    std::uint64_t total = 0;
    for (std::uint32_t q : quotas) total += q;
    REPRO_ENSURE(total <= geometry_.ways,
                 "quota sum exceeds associativity");
  }
  quotas_ = std::move(quotas);
}

bool SharedCache::access(const MemoryAccess& access, ProcessId pid) {
  REPRO_ENSURE(pid < stats_.size(), "pid out of range");
  REPRO_ENSURE(access.set < geometry_.sets, "set out of range");
  Stats& stats = stats_[pid];
  stats.demand_refs += 1.0;

  bool was_prefetched = false;
  const std::uint32_t slot =
      lookup_and_touch(access.set, access.line, pid, &was_prefetched);
  const bool hit = slot < geometry_.ways;
  if (hit) {
    if (was_prefetched) stats.prefetch_hits += 1.0;
  } else {
    stats.demand_misses += 1.0;
    install(access.set, access.line, pid, /*prefetched=*/false);
  }

  if (prefetch_enabled_ && access.stream_addr != kNoStreamAddr) {
    const std::uint64_t prev = last_stream_addr_[pid];
    last_stream_addr_[pid] = access.stream_addr;
    if (prev != kNoStreamAddr && access.stream_addr == prev + 1) {
      // Detected an ascending stream: pull in the next line.
      const MemoryAccess next =
          stream_access(access.stream_addr + 1, geometry_.sets);
      bool ignored = false;
      if (lookup_and_touch(next.set, next.line, pid, &ignored) >=
          geometry_.ways) {
        install(next.set, next.line, pid, /*prefetched=*/true);
        stats.prefetch_issues += 1.0;
      }
    }
  }
  return hit;
}

void SharedCache::purge(ProcessId pid) {
  REPRO_ENSURE(pid < stats_.size(), "pid out of range");
  for (std::uint32_t set = 0; set < geometry_.sets; ++set) {
    Line* base = set_begin(set);
    // Compact surviving lines toward the MRU end, preserving order.
    std::uint32_t out = 0;
    for (std::uint32_t w = 0; w < geometry_.ways; ++w) {
      if ((base[w] & kValidBit) && owner_of(base[w]) == pid) continue;
      if (out != w) base[out] = base[w];
      ++out;
    }
    for (; out < geometry_.ways; ++out) base[out] = 0ull;
  }
  resident_lines_[pid] = 0.0;
  last_stream_addr_[pid] = kNoStreamAddr;
}

Ways SharedCache::occupancy_ways(ProcessId pid) const {
  REPRO_ENSURE(pid < resident_lines_.size(), "pid out of range");
  return resident_lines_[pid] / static_cast<double>(geometry_.sets);
}

const SharedCache::Stats& SharedCache::stats(ProcessId pid) const {
  REPRO_ENSURE(pid < stats_.size(), "pid out of range");
  return stats_[pid];
}

void SharedCache::reset_stats() {
  for (Stats& s : stats_) s = Stats{};
}

}  // namespace repro::sim
