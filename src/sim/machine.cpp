#include "repro/sim/machine.hpp"

#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::sim {

std::vector<CoreId> MachineConfig::cores_on_die(DieId die) const {
  std::vector<CoreId> out;
  for (CoreId c = 0; c < cores; ++c)
    if (core_to_die[c] == die) out.push_back(c);
  return out;
}

std::vector<CoreId> MachineConfig::partner_set(CoreId core) const {
  REPRO_ENSURE(core < cores, "core out of range");
  std::vector<CoreId> out;
  for (CoreId c : cores_on_die(core_to_die[core]))
    if (c != core) out.push_back(c);
  return out;
}

bool MachineConfig::can_run_at(Hertz hz) const {
  if (!(hz > 0.0)) return false;
  // Relative tolerance: a frequency that round-tripped through the
  // profile store (shortest-round-trip doubles) is bit-exact, but a
  // hand-written store may carry a few fewer digits.
  const auto matches = [hz](Hertz level) {
    return std::abs(hz - level) <= 1e-9 * level;
  };
  if (matches(frequency)) return true;
  for (Hertz f : core_frequency)
    if (matches(f)) return true;
  for (Hertz f : dvfs_levels)
    if (matches(f)) return true;
  return false;
}

void MachineConfig::validate() const {
  REPRO_ENSURE(cores > 0, "machine needs cores");
  REPRO_ENSURE(core_to_die.size() == cores, "core_to_die size mismatch");
  for (DieId d : core_to_die) REPRO_ENSURE(d < dies, "die id out of range");
  REPRO_ENSURE(l2.sets > 0 && l2.ways > 0, "empty L2");
  REPRO_ENSURE(frequency > 0.0, "bad frequency");
  if (!core_frequency.empty()) {
    REPRO_ENSURE(core_frequency.size() == cores,
                 "core_frequency size mismatch");
    for (Hertz f : core_frequency)
      REPRO_ENSURE(f > 0.0, "bad per-core frequency");
  }
  for (std::size_t i = 0; i < dvfs_levels.size(); ++i) {
    REPRO_ENSURE(dvfs_levels[i] > 0.0, "bad DVFS level");
    REPRO_ENSURE(i == 0 || dvfs_levels[i - 1] < dvfs_levels[i],
                 "DVFS levels must be strictly ascending");
  }
  REPRO_ENSURE(l2_hit_cycles > 0.0 && memory_cycles > l2_hit_cycles,
               "memory must be slower than L2");
}

MachineConfig four_core_server() {
  MachineConfig m;
  m.name = "4-core server (Core 2 Quad Q6600 class)";
  m.cores = 4;
  m.dies = 2;
  m.core_to_die = {0, 0, 1, 1};
  m.l2 = CacheGeometry{512, 16, 64};
  m.frequency = 2.4e9;
  m.dvfs_levels = {1.2e9, 1.6e9, 2.0e9, 2.4e9};
  m.l2_hit_cycles = 14.0;
  m.memory_cycles = 220.0;
  m.validate();
  return m;
}

MachineConfig two_core_workstation() {
  MachineConfig m;
  m.name = "2-core workstation (Pentium Dual-Core E2220 class)";
  m.cores = 2;
  m.dies = 1;
  m.core_to_die = {0, 0};
  m.l2 = CacheGeometry{512, 8, 64};
  m.frequency = 2.4e9;
  m.dvfs_levels = {1.2e9, 1.8e9, 2.4e9};
  m.l2_hit_cycles = 12.0;
  m.memory_cycles = 210.0;
  m.validate();
  return m;
}

MachineConfig core2_duo_laptop() {
  MachineConfig m;
  m.name = "2-core laptop (Core 2 Duo class, 12-way L2)";
  m.cores = 2;
  m.dies = 1;
  m.core_to_die = {0, 0};
  m.l2 = CacheGeometry{512, 12, 64};
  m.frequency = 2.13e9;
  m.dvfs_levels = {1.06e9, 1.6e9, 2.13e9};
  m.l2_hit_cycles = 14.0;
  m.memory_cycles = 240.0;
  m.validate();
  return m;
}

}  // namespace repro::sim
