#include "repro/sim/fault_injector.hpp"

#include <array>
#include <cmath>
#include <utility>

#include "repro/common/ensure.hpp"

namespace repro::sim {

namespace {

/// The counter block's fields, addressable for random corruption.
constexpr std::array<double hpc::Counters::*, 7> kCounterFields = {
    &hpc::Counters::instructions, &hpc::Counters::cycles,
    &hpc::Counters::l1_refs,      &hpc::Counters::l2_refs,
    &hpc::Counters::l2_misses,    &hpc::Counters::branches,
    &hpc::Counters::fp_ops,
};

}  // namespace

const char* fault_class_name(FaultClass c) {
  switch (c) {
    case FaultClass::kDrop: return "drop";
    case FaultClass::kDuplicate: return "dup";
    case FaultClass::kReorder: return "reorder";
    case FaultClass::kWrap: return "wrap";
    case FaultClass::kScaleNoise: return "scale";
    case FaultClass::kSpike: return "spike";
    case FaultClass::kZero: return "zero";
  }
  return "?";
}

std::optional<FaultClass> parse_fault_class(const std::string& name) {
  for (FaultClass c : {FaultClass::kDrop, FaultClass::kDuplicate,
                       FaultClass::kReorder, FaultClass::kWrap,
                       FaultClass::kScaleNoise, FaultClass::kSpike,
                       FaultClass::kZero})
    if (name == fault_class_name(c)) return c;
  return std::nullopt;
}

double& FaultInjectorOptions::rate_of(FaultClass c) {
  switch (c) {
    case FaultClass::kDrop: return drop;
    case FaultClass::kDuplicate: return duplicate;
    case FaultClass::kReorder: return reorder;
    case FaultClass::kWrap: return wrap;
    case FaultClass::kScaleNoise: return scale_noise;
    case FaultClass::kSpike: return spike;
    case FaultClass::kZero: return zero;
  }
  return drop;
}

FaultInjector::FaultInjector(System::SampleCallback downstream,
                             FaultInjectorOptions options)
    : downstream_(std::move(downstream)),
      options_(options),
      rng_(options.seed) {
  REPRO_ENSURE(downstream_ != nullptr, "fault injector needs a downstream");
  REPRO_ENSURE(options_.wrap_bits == 32 || options_.wrap_bits == 48,
               "wrap_bits must be 32 or 48");
  REPRO_ENSURE(options_.scale_lo > 0.0 &&
                   options_.scale_hi >= options_.scale_lo,
               "bad scale-noise range");
  REPRO_ENSURE(options_.spike_factor > 1.0, "spike factor must exceed 1");
  REPRO_ENSURE(options_.burst_enter >= 0.0 && options_.burst_enter <= 1.0 &&
                   options_.burst_drop >= 0.0 && options_.burst_drop <= 1.0,
               "burst probabilities must be in [0, 1]");
  REPRO_ENSURE(options_.burst_enter == 0.0 ||
                   (options_.burst_exit > 0.0 && options_.burst_exit <= 1.0),
               "burst_exit must be in (0, 1] when bursts are enabled");
}

void FaultInjector::deliver(const Sample& s) {
  ++stats_.windows_delivered;
  downstream_(s);
}

void FaultInjector::corrupt_wrap(Sample& s) {
  if (s.process_delta.empty()) return;
  const std::size_t pid = rng_.uniform_index(s.process_delta.size());
  const std::size_t field = rng_.uniform_index(kCounterFields.size());
  // A monitor differencing a wrapped 2^B cumulative counter reads
  // delta − 2^B: a hugely negative delta whose exact repair is +2^B.
  s.process_delta[pid].*kCounterFields[field] -=
      std::ldexp(1.0, options_.wrap_bits);
  ++stats_.wrapped;
}

void FaultInjector::corrupt_scale(Sample& s) {
  if (s.process_delta.empty()) return;
  const std::size_t pid = rng_.uniform_index(s.process_delta.size());
  // Multiplexed counters are extrapolated from fractional coverage;
  // each event group gets its own (wrong) scale factor.
  for (auto field : kCounterFields)
    s.process_delta[pid].*field *=
        rng_.uniform(options_.scale_lo, options_.scale_hi);
  ++stats_.scaled;
}

void FaultInjector::corrupt_spike(Sample& s) {
  if (s.process_delta.empty()) return;
  const std::size_t pid = rng_.uniform_index(s.process_delta.size());
  const std::size_t field = rng_.uniform_index(kCounterFields.size());
  s.process_delta[pid].*kCounterFields[field] *= options_.spike_factor;
  ++stats_.spiked;
}

void FaultInjector::corrupt_zero(Sample& s) {
  if (s.process_delta.empty()) return;
  // The counter file read back zeros while the process was scheduled:
  // the block is cleared but the CPU-time accounting is intact.
  const std::size_t pid = rng_.uniform_index(s.process_delta.size());
  s.process_delta[pid] = hpc::Counters{};
  ++stats_.zeroed;
}

void FaultInjector::push(const Sample& sample) {
  ++stats_.windows_seen;

  // Correlated burst layer, drawn BEFORE the per-class draws. Gated on
  // burst_enter so a disabled layer consumes no RNG state and existing
  // (seed, options) fault patterns stay bit-identical.
  bool burst_dropped = false;
  if (options_.burst_enter > 0.0) {
    if (!in_burst_) {
      if (rng_.bernoulli(options_.burst_enter)) {
        in_burst_ = true;
        ++stats_.bursts;
      }
    } else if (rng_.bernoulli(options_.burst_exit)) {
      in_burst_ = false;
    }
    if (in_burst_ && rng_.bernoulli(options_.burst_drop)) {
      burst_dropped = true;
      ++stats_.burst_dropped;
    }
  }

  // Draw every class in a fixed order so the fault pattern depends only
  // on (seed, window ordinal), not on which faults happened to fire.
  const bool do_drop = rng_.bernoulli(options_.drop);
  const bool do_dup = rng_.bernoulli(options_.duplicate);
  const bool do_reorder = rng_.bernoulli(options_.reorder);
  const bool do_wrap = rng_.bernoulli(options_.wrap);
  const bool do_scale = rng_.bernoulli(options_.scale_noise);
  const bool do_spike = rng_.bernoulli(options_.spike);
  const bool do_zero = rng_.bernoulli(options_.zero);

  Sample s = sample;
  if (do_wrap) corrupt_wrap(s);
  if (do_scale) corrupt_scale(s);
  if (do_spike) corrupt_spike(s);
  if (do_zero) corrupt_zero(s);

  if (do_drop || burst_dropped) {
    if (do_drop) ++stats_.dropped;
  } else if (do_reorder && !held_.has_value()) {
    // Hold this window; it is released right after its successor, so
    // the downstream sees the two swapped.
    held_ = std::move(s);
    ++stats_.reordered;
    return;
  } else {
    deliver(s);
    if (do_dup) {
      deliver(s);
      ++stats_.duplicated;
    }
  }
  if (held_.has_value()) {
    deliver(*held_);
    held_.reset();
  }
}

void FaultInjector::flush() {
  if (!held_.has_value()) return;
  deliver(*held_);
  held_.reset();
}

}  // namespace repro::sim
