#include "repro/sim/system.hpp"

#include <algorithm>

namespace repro::sim {

Watts RunResult::mean_true_power() const {
  REPRO_ENSURE(!samples.empty(), "no samples recorded");
  double sum = 0.0;
  for (const Sample& s : samples) sum += s.true_power;
  return sum / static_cast<double>(samples.size());
}

Watts RunResult::mean_measured_power() const {
  REPRO_ENSURE(!samples.empty(), "no samples recorded");
  double sum = 0.0;
  for (const Sample& s : samples) sum += s.measured_power;
  return sum / static_cast<double>(samples.size());
}

void DvfsSchedule::validate(std::uint32_t cores) const {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const DvfsStep& s = steps[i];
    REPRO_ENSURE(s.at >= 0.0, "DVFS step at negative time");
    REPRO_ENSURE(s.core < cores, "DVFS step targets an unknown core");
    REPRO_ENSURE(s.hz > 0.0, "DVFS step needs a positive frequency");
    REPRO_ENSURE(i == 0 || steps[i - 1].at <= s.at,
                 "DVFS steps must be sorted by time");
  }
}

const ProcessReport& RunResult::process(ProcessId pid) const {
  for (const ProcessReport& p : processes)
    if (p.pid == pid) return p;
  REPRO_ENSURE(false, "unknown pid in RunResult");
  __builtin_unreachable();
}

System::System(const SystemConfig& config, const power::OracleConfig& oracle,
               std::uint64_t seed)
    : config_(config),
      oracle_(oracle),
      clamp_(power::CurrentClamp::Config{}, Rng{seed ^ 0xc1a3bULL}),
      rng_(seed) {
  config_.machine.validate();
  REPRO_ENSURE(config_.timeslice > 0.0 && config_.sample_period > 0.0,
               "bad scheduling configuration");
  for (DieId d = 0; d < config_.machine.dies; ++d)
    l2_.push_back(std::make_unique<SharedCache>(
        config_.machine.l2, config_.machine.prefetch_enabled,
        config_.max_processes));
  cores_.resize(config_.machine.cores);
}

ProcessId System::add_process(std::string name, CoreId core,
                              InstructionMix mix,
                              std::unique_ptr<AccessGenerator> generator) {
  REPRO_ENSURE(core < config_.machine.cores, "core out of range");
  REPRO_ENSURE(generator != nullptr, "null generator");
  REPRO_ENSURE(processes_.size() < config_.max_processes,
               "too many processes for this System");
  mix.validate();

  const ProcessId pid = static_cast<ProcessId>(processes_.size());
  Process p;
  p.name = std::move(name);
  p.core = core;
  p.mix = mix;
  p.generator = std::move(generator);
  p.rng = rng_.fork(pid);
  processes_.push_back(std::move(p));

  Core& c = cores_[core];
  c.run_queue.push_back(pid);
  if (c.run_queue.size() == 1) c.slice_end = c.clock + config_.timeslice;
  return pid;
}

void System::advance_one_access(Core& core) {
  Process& p = processes_[core.run_queue[core.current]];
  const ProcessId pid = core.run_queue[core.current];
  const MemoryAccess access = p.generator->next(p.rng);

  SharedCache& cache = *l2_[config_.machine.core_to_die[p.core]];
  const bool hit = cache.access(access, pid);

  const InstructionMix& mix = p.mix;
  const double d_instr = 1.0 / mix.l2_api;
  const double d_cycles =
      d_instr * mix.base_cpi +
      (hit ? config_.machine.l2_hit_cycles : config_.machine.memory_cycles);
  const Seconds d_t = d_cycles / config_.machine.frequency_of(p.core);

  core.clock += d_t;
  p.cpu_time += d_t;

  hpc::Counters delta;
  delta.instructions = d_instr;
  delta.cycles = d_cycles;
  delta.l1_refs = d_instr * mix.l1_rpi;
  delta.l2_refs = 1.0;
  delta.l2_misses = hit ? 0.0 : 1.0;
  delta.branches = d_instr * mix.branch_pi;
  delta.fp_ops = d_instr * mix.fp_pi;
  p.totals += delta;
  core.totals += delta;

  if (core.clock >= core.slice_end) {
    core.current = (core.current + 1) % core.run_queue.size();
    core.slice_end = core.clock + config_.timeslice;
  }
}

void System::advance_to(Seconds target) {
  // Advance the busiest-behind core one access at a time so that
  // cross-core interleaving tracks each core's actual access rate.
  while (true) {
    Core* next = nullptr;
    for (Core& c : cores_) {
      if (c.run_queue.empty()) continue;
      if (c.clock >= target) continue;
      if (next == nullptr || c.clock < next->clock) next = &c;
    }
    if (next == nullptr) break;
    advance_one_access(*next);
  }
  for (Core& c : cores_)
    if (c.run_queue.empty()) c.clock = target;
  now_ = target;
}

Sample System::take_sample(Seconds window_end, Seconds window_len,
                           const std::vector<hpc::Counters>& core_start,
                           const std::vector<hpc::Counters>& proc_start,
                           const std::vector<Seconds>& cpu_start) {
  Sample s;
  s.time = window_end;
  s.duration = window_len;
  s.seq = sample_seq_++;
  s.die = config_.die_tag;
  s.core_rates.resize(cores_.size());
  s.core_frequency.resize(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    s.core_rates[c] =
        hpc::EventRates::from(cores_[c].totals - core_start[c], window_len);
    s.core_frequency[c] =
        config_.machine.frequency_of(static_cast<CoreId>(c));
  }
  s.true_power = oracle_.true_power(s.core_rates);
  s.measured_power = clamp_.measure(s.true_power, window_len);
  s.occupancy.resize(processes_.size());
  s.process_delta.resize(processes_.size());
  s.process_cpu.resize(processes_.size());
  s.process_frequency.resize(processes_.size());
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    s.process_frequency[pid] =
        config_.machine.frequency_of(processes_[pid].core);
    s.occupancy[pid] =
        l2_[config_.machine.core_to_die[processes_[pid].core]]
            ->occupancy_ways(pid);
    s.process_delta[pid] = processes_[pid].totals - proc_start[pid];
    s.process_cpu[pid] = processes_[pid].cpu_time - cpu_start[pid];
  }
  return s;
}

void System::set_core_frequency(CoreId core, Hertz hz) {
  REPRO_ENSURE(core < config_.machine.cores, "core out of range");
  REPRO_ENSURE(hz > 0.0, "frequency must be positive");
  MachineConfig& m = config_.machine;
  // Materialize the per-core vector on the first override; from here
  // on frequency_of() reads it and every subsequent access on the
  // core is timed at the new clock.
  if (m.core_frequency.empty())
    m.core_frequency.assign(m.cores, m.frequency);
  m.core_frequency[core] = hz;
}

void System::set_dvfs_schedule(DvfsSchedule schedule) {
  schedule.validate(config_.machine.cores);
  dvfs_ = std::move(schedule);
  dvfs_next_ = 0;
  apply_due_dvfs_steps(now_);
}

void System::apply_due_dvfs_steps(Seconds now) {
  while (dvfs_next_ < dvfs_.steps.size() &&
         dvfs_.steps[dvfs_next_].at <= now + 1e-12) {
    const DvfsStep& step = dvfs_.steps[dvfs_next_];
    set_core_frequency(step.core, step.hz);
    ++dvfs_next_;
  }
}

void System::set_partition(DieId die, std::vector<std::uint32_t> quotas) {
  REPRO_ENSURE(die < l2_.size(), "die out of range");
  l2_[die]->set_partition(std::move(quotas));
}

void System::warm_up(Seconds duration) {
  REPRO_ENSURE(duration >= 0.0, "negative warm-up");
  advance_to(now_ + duration);
}

RunResult System::run(Seconds duration) { return run(duration, nullptr); }

RunResult System::run(Seconds duration, const SampleCallback& on_sample) {
  REPRO_ENSURE(duration > 0.0, "run needs a positive duration");
  const Seconds start = now_;

  // Snapshot lifetime statistics so the result reports window deltas.
  std::vector<hpc::Counters> run_proc_start(processes_.size());
  std::vector<Seconds> run_cpu_start(processes_.size());
  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    run_proc_start[pid] = processes_[pid].totals;
    run_cpu_start[pid] = processes_[pid].cpu_time;
  }

  RunResult result;
  result.duration = duration;
  std::vector<double> occupancy_sum(processes_.size(), 0.0);

  Seconds t = start;
  const Seconds end = start + duration;
  while (t < end - 1e-12) {
    // Scripted DVFS steps land here, at the window start, so the
    // window about to be advanced runs under a single per-core clock.
    apply_due_dvfs_steps(t);
    const Seconds window_end = std::min(end, t + config_.sample_period);
    std::vector<hpc::Counters> core_start(cores_.size());
    for (std::size_t c = 0; c < cores_.size(); ++c)
      core_start[c] = cores_[c].totals;
    std::vector<hpc::Counters> proc_start(processes_.size());
    std::vector<Seconds> cpu_start(processes_.size());
    for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
      proc_start[pid] = processes_[pid].totals;
      cpu_start[pid] = processes_[pid].cpu_time;
    }
    advance_to(window_end);
    Sample s =
        take_sample(window_end, window_end - t, core_start, proc_start,
                    cpu_start);
    for (ProcessId pid = 0; pid < processes_.size(); ++pid)
      occupancy_sum[pid] += s.occupancy[pid];
    if (on_sample) on_sample(s);
    result.samples.push_back(std::move(s));
    t = window_end;
  }

  for (ProcessId pid = 0; pid < processes_.size(); ++pid) {
    ProcessReport r;
    r.pid = pid;
    r.name = processes_[pid].name;
    r.core = processes_[pid].core;
    r.counters = processes_[pid].totals - run_proc_start[pid];
    r.cpu_time = processes_[pid].cpu_time - run_cpu_start[pid];
    r.mean_occupancy =
        result.samples.empty()
            ? 0.0
            : occupancy_sum[pid] / static_cast<double>(result.samples.size());
    result.processes.push_back(std::move(r));
  }
  return result;
}

std::vector<Sample> System::split_sample(const Sample& sample) const {
  REPRO_ENSURE(sample.core_rates.size() == cores_.size(),
               "sample shape does not match this System");
  std::vector<Sample> slices(config_.machine.dies);
  for (DieId d = 0; d < config_.machine.dies; ++d) {
    Sample& slice = slices[d];
    slice.time = sample.time;
    slice.duration = sample.duration;
    slice.seq = sample.seq;
    slice.die = d;
    slice.true_power = sample.true_power;
    slice.measured_power = sample.measured_power;
    // Frequency vectors are window metadata like the power readings:
    // copied whole onto every slice, not sliced.
    slice.core_frequency = sample.core_frequency;
    slice.process_frequency = sample.process_frequency;
    slice.core_rates.resize(sample.core_rates.size());
    slice.occupancy.resize(sample.occupancy.size());
    slice.process_delta.resize(sample.process_delta.size());
    slice.process_cpu.resize(sample.process_cpu.size());
  }
  for (std::size_t c = 0; c < sample.core_rates.size(); ++c)
    slices[config_.machine.core_to_die[c]].core_rates[c] =
        sample.core_rates[c];
  for (ProcessId pid = 0; pid < sample.process_delta.size() &&
                          pid < processes_.size();
       ++pid) {
    const DieId d = config_.machine.core_to_die[processes_[pid].core];
    slices[d].occupancy[pid] = sample.occupancy[pid];
    slices[d].process_delta[pid] = sample.process_delta[pid];
    slices[d].process_cpu[pid] = sample.process_cpu[pid];
  }
  return slices;
}

const SharedCache& System::l2(DieId die) const {
  REPRO_ENSURE(die < l2_.size(), "die out of range");
  return *l2_[die];
}

}  // namespace repro::sim
