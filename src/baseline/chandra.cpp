#include "repro/baseline/chandra.hpp"

#include <algorithm>
#include <cmath>

#include "repro/common/ensure.hpp"

namespace repro::baseline {

namespace {

core::ProcessPrediction at_size(const core::FeatureVector& fv, double s,
                                std::uint32_t ways) {
  core::ProcessPrediction p;
  p.effective_size = std::clamp(s, 0.0, static_cast<double>(ways));
  p.mpa = fv.histogram.mpa(p.effective_size);
  p.spi = fv.spi_at(p.mpa);
  p.aps = fv.api / p.spi;
  return p;
}

/// Stand-alone accesses per second (full cache → lowest MPA).
double alone_aps(const core::FeatureVector& fv, std::uint32_t ways) {
  return fv.api / fv.spi_at(fv.histogram.mpa(static_cast<double>(ways)));
}

std::vector<core::ProcessPrediction> share_by_frequency(
    const std::vector<core::FeatureVector>& processes, std::uint32_t ways,
    const std::vector<double>& freq) {
  double total = 0.0;
  for (double f : freq) total += f;
  REPRO_ENSURE(total > 0.0, "degenerate frequencies");
  std::vector<core::ProcessPrediction> out;
  out.reserve(processes.size());
  for (std::size_t i = 0; i < processes.size(); ++i)
    out.push_back(at_size(processes[i],
                          static_cast<double>(ways) * freq[i] / total,
                          ways));
  return out;
}

}  // namespace

std::vector<core::ProcessPrediction> predict_foa(
    const std::vector<core::FeatureVector>& processes, std::uint32_t ways) {
  REPRO_ENSURE(!processes.empty() && ways > 0, "bad FOA inputs");
  for (const core::FeatureVector& fv : processes) fv.validate();
  if (processes.size() == 1)
    return {at_size(processes[0], ways, ways)};
  std::vector<double> freq;
  freq.reserve(processes.size());
  for (const core::FeatureVector& fv : processes)
    freq.push_back(alone_aps(fv, ways));
  return share_by_frequency(processes, ways, freq);
}

std::vector<core::ProcessPrediction> predict_sdc(
    const std::vector<core::FeatureVector>& processes, std::uint32_t ways) {
  REPRO_ENSURE(!processes.empty() && ways > 0, "bad SDC inputs");
  for (const core::FeatureVector& fv : processes) fv.validate();
  const std::size_t k = processes.size();
  if (k == 1) return {at_size(processes[0], ways, ways)};

  // Per-thread stack-distance counters, scaled to access rates:
  // c_t(d) = rate_t · P_t(distance = d). SDC's merge walks the A ways
  // of the merged profile, at each step granting the next way to the
  // thread whose current head counter is largest, then advancing that
  // thread's depth pointer.
  std::vector<double> rate(k);
  for (std::size_t t = 0; t < k; ++t)
    rate[t] = alone_aps(processes[t], ways);

  std::vector<std::uint32_t> depth(k, 1);   // next histogram position
  std::vector<std::uint32_t> granted(k, 0);  // ways won
  for (std::uint32_t slot = 0; slot < ways; ++slot) {
    std::size_t best = 0;
    double best_value = -1.0;
    for (std::size_t t = 0; t < k; ++t) {
      const double value =
          rate[t] * processes[t].histogram.probability(depth[t]);
      if (value > best_value) {
        best_value = value;
        best = t;
      }
    }
    ++granted[best];
    ++depth[best];
  }

  std::vector<core::ProcessPrediction> out;
  out.reserve(k);
  for (std::size_t t = 0; t < k; ++t)
    out.push_back(at_size(processes[t], granted[t], ways));
  return out;
}

std::vector<core::ProcessPrediction> predict_foa_iterated(
    const std::vector<core::FeatureVector>& processes, std::uint32_t ways,
    int max_iterations, double damping) {
  REPRO_ENSURE(!processes.empty() && ways > 0, "bad FOA-iter inputs");
  REPRO_ENSURE(damping > 0.0 && damping <= 1.0, "bad damping");
  for (const core::FeatureVector& fv : processes) fv.validate();
  const std::size_t k = processes.size();
  if (k == 1) return {at_size(processes[0], ways, ways)};

  std::vector<double> freq(k);
  for (std::size_t t = 0; t < k; ++t)
    freq[t] = alone_aps(processes[t], ways);

  std::vector<core::ProcessPrediction> pred;
  for (int it = 0; it < max_iterations; ++it) {
    pred = share_by_frequency(processes, ways, freq);
    double delta = 0.0;
    for (std::size_t t = 0; t < k; ++t) {
      const double updated =
          damping * pred[t].aps + (1.0 - damping) * freq[t];
      delta = std::max(delta, std::fabs(updated - freq[t]) /
                                  std::max(freq[t], 1.0));
      freq[t] = updated;
    }
    if (delta < 1e-9) break;
  }
  return share_by_frequency(processes, ways, freq);
}

}  // namespace repro::baseline
